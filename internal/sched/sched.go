// Package sched is the A4NN workflow resource manager (paper §2.5): it
// distributes NN training tasks across accelerators with the FIFO dynamic
// scheduling the paper borrows from Ray — when a network finishes
// training, the next network in the generation starts on the freed device
// — and it accounts for the generation barrier, whose end-of-generation
// idle time the paper calls out.
//
// Devices are simulated accelerators. Tasks really execute (one worker
// goroutine per device, so a 4-device pool genuinely trains four networks
// concurrently), and each task reports its cost in simulated seconds —
// computed by the caller from model FLOPs, dataset size, and the device
// throughput — so that paper-scale wall-clock numbers (tens of hours on a
// V100) are reproduced deterministically regardless of host speed.
//
// The pool is fault-tolerant: an installed FaultPlan injects device
// crashes, transient task errors, and straggler slowdowns; transient
// failures are retried under a RetryPolicy (exponential backoff, retry
// budget, different device when possible); attempts exceeding the task
// deadline are re-dispatched; and a crashed device is drained, its queued
// work redistributed FIFO to the survivors. Totals carries the
// reliability accounting (Retries, Faults, LostSeconds) alongside the
// wall/busy/idle accounting.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"a4nn/internal/obs"
)

// Device models one accelerator.
type Device struct {
	// ID indexes the device within its pool.
	ID int
	// Throughput is the effective training throughput in FLOPs/second.
	Throughput float64
}

// DefaultThroughput approximates an NVIDIA V100's effective mixed
// training throughput (far below peak): 2 TFLOP/s.
const DefaultThroughput = 2e12

// EpochCost returns the simulated seconds one training epoch costs on the
// device: samples · FLOPs/sample · backwardFactor / throughput. The
// conventional backwardFactor of 3 counts forward + ~2× backward.
func (d Device) EpochCost(flopsPerSample int64, samples int) float64 {
	const backwardFactor = 3
	return float64(flopsPerSample) * float64(samples) * backwardFactor / d.Throughput
}

// TaskCtx describes one dispatch of a task onto a device.
type TaskCtx struct {
	// Ctx is the run's cancellation context; tasks should check it
	// between epochs so cancellation stops in-flight work promptly.
	Ctx context.Context
	// Dev is the device the attempt runs on.
	Dev Device
	// Generation is the pool's 0-based generation counter.
	Generation int
	// Task is the task's index within its generation.
	Task int
	// Attempt is 1-based; values above 1 mean earlier attempts failed
	// and this is a retry (on a different device when possible).
	Attempt int
	// SlowFactor ≥ 1 marks the device a straggler for this generation;
	// cooperative tasks multiply their per-epoch simulated cost by it.
	SlowFactor float64
	// DeadlineSeconds is the per-attempt simulated deadline (0 = none).
	// Cooperative tasks abort with a transient error once their
	// simulated cost exceeds it, so the pool can re-dispatch the work.
	DeadlineSeconds float64
}

// Task is one schedulable training job. It receives its dispatch context
// and returns its total cost in simulated seconds. A failed attempt
// returns the simulated seconds it wasted before failing; errors wrapped
// with Transient are retried, anything else fails the task.
type Task func(tc TaskCtx) (simSeconds float64, err error)

// Pool is a fixed set of devices plus cumulative accounting across
// generations.
type Pool struct {
	devices []Device

	mu        sync.Mutex
	wall      float64 // total simulated wall seconds across generations
	busy      float64 // total simulated busy seconds across all devices
	idle      float64 // total simulated idle seconds (barrier waste)
	tasks     int
	overheads float64 // simulated seconds of per-task overhead added via AddOverhead
	retries   int     // re-dispatched attempts across generations
	faults    int     // fault events (injected, crash, deadline, transient)
	lost      float64 // simulated seconds wasted on failed attempts
	nextGen   int     // 0-based RunGeneration call counter
	dead      []bool  // devices lost to crashes

	plan     *FaultPlan
	retry    RetryPolicy
	deadline float64 // per-attempt simulated deadline (0 = none)
	obsv     poolObs
}

// poolObs holds the pool's pre-registered metric handles. The zero
// value (all-nil handles) disables instrumentation: every update is a
// nil-safe no-op costing one branch.
type poolObs struct {
	tasks       *obs.Counter
	dispatches  *obs.Counter
	retries     *obs.Counter
	faults      *obs.Counter
	stragglers  *obs.Counter
	generations *obs.Counter
	taskLatency *obs.Histogram
	queueWait   *obs.Histogram
	genWall     *obs.Gauge
	idle        *obs.Gauge
	gflops      *obs.Gauge
	devBusy     []*obs.Gauge
	devUtil     []*obs.Gauge
	journal     *obs.Journal
}

// SetObserver registers the pool's metrics (dispatch/retry/straggler
// counters, per-device busy gauges, task-latency and queue-wait
// histograms, all in simulated seconds) with the observer's registry.
// A nil observer removes instrumentation. Call before RunGeneration.
func (p *Pool) SetObserver(o *obs.Observer) {
	reg := o.Registry()
	p.mu.Lock()
	defer p.mu.Unlock()
	if reg == nil {
		p.obsv = poolObs{}
		return
	}
	p.obsv = poolObs{
		tasks:       reg.Counter("a4nn_sched_tasks_total"),
		dispatches:  reg.Counter("a4nn_sched_dispatches_total"),
		retries:     reg.Counter("a4nn_sched_retries_total"),
		faults:      reg.Counter("a4nn_sched_faults_total"),
		stragglers:  reg.Counter("a4nn_sched_stragglers_total"),
		generations: reg.Counter("a4nn_sched_generations_total"),
		taskLatency: reg.Histogram("a4nn_sched_task_sim_seconds", obs.SecondsBuckets),
		queueWait:   reg.Histogram("a4nn_sched_queue_wait_sim_seconds", obs.SecondsBuckets),
		genWall:     reg.Gauge("a4nn_sched_generation_wall_sim_seconds"),
		idle:        reg.Gauge("a4nn_sched_idle_sim_seconds_total"),
		gflops:      reg.Gauge("a4nn_sched_effective_gflops"),
	}
	for _, d := range p.devices {
		p.obsv.devBusy = append(p.obsv.devBusy,
			reg.Gauge(fmt.Sprintf(`a4nn_sched_device_busy_sim_seconds{device="%d"}`, d.ID)))
		p.obsv.devUtil = append(p.obsv.devUtil,
			reg.Gauge(fmt.Sprintf(`a4nn_sched_device_util_pct{device="%d"}`, d.ID)))
	}
	p.obsv.journal = o.Journal()
}

// NewPool creates a pool of n identical devices. throughput ≤ 0 selects
// DefaultThroughput.
func NewPool(n int, throughput float64) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("sched: pool needs ≥ 1 device, got %d", n)
	}
	if throughput <= 0 {
		throughput = DefaultThroughput
	}
	p := &Pool{devices: make([]Device, n), dead: make([]bool, n)}
	for i := range p.devices {
		p.devices[i] = Device{ID: i, Throughput: throughput}
	}
	return p, nil
}

// Size returns the number of devices.
func (p *Pool) Size() int { return len(p.devices) }

// Devices returns a copy of the device list.
func (p *Pool) Devices() []Device { return append([]Device(nil), p.devices...) }

// SetFaultPlan installs (or, with nil, removes) a fault-injection plan.
func (p *Pool) SetFaultPlan(plan *FaultPlan) error {
	if plan != nil {
		if err := plan.Validate(); err != nil {
			return err
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.plan = plan
	return nil
}

// SetRetryPolicy configures transient-failure retry.
func (p *Pool) SetRetryPolicy(rp RetryPolicy) error {
	if err := rp.Validate(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.retry = rp
	return nil
}

// SetTaskDeadline sets the per-attempt simulated deadline (0 disables).
func (p *Pool) SetTaskDeadline(simSeconds float64) error {
	if simSeconds < 0 {
		return fmt.Errorf("sched: negative task deadline %v", simSeconds)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.deadline = simSeconds
	return nil
}

// DeadDevices returns the IDs of devices lost to crashes, ascending.
func (p *Pool) DeadDevices() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []int
	for i, d := range p.dead {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// GenerationReport describes the simulated schedule of one generation.
type GenerationReport struct {
	// TaskSeconds is each task's final successful simulated duration, in
	// submission order (0 for tasks that failed).
	TaskSeconds []float64
	// DeviceBusy is the simulated busy time of each device (including
	// time spent on attempts that later failed).
	DeviceBusy []float64
	// WallSeconds is the generation's simulated makespan (the barrier:
	// the generation ends when its last task ends).
	WallSeconds float64
	// IdleSeconds sums each device's idle time under the barrier — the
	// downtime §2.5 describes when the generation size does not divide
	// the device count. Devices dead before the generation contribute
	// nothing; a device crashing mid-generation stops accruing idle at
	// its death.
	IdleSeconds float64
	// Retries counts re-dispatched attempts.
	Retries int
	// Faults counts fault events (injected errors, crashes, deadline
	// misses, real transient failures).
	Faults int
	// LostSeconds is the simulated time wasted on failed attempts.
	LostSeconds float64
}

// attemptMeta tracks one task's position in the retry state machine.
type attemptMeta struct {
	task      int
	attempt   int          // 1-based number of the next dispatch
	exclude   map[int]bool // devices this task already failed on
	notBefore float64      // virtual release time after backoff
}

func (a *attemptMeta) excludeDev(id int) {
	if a.exclude == nil {
		a.exclude = make(map[int]bool)
	}
	a.exclude[id] = true
}

// genRun is the mutable state of one RunGeneration call. Worker
// goroutines (one per alive device) pull attempts FIFO from queue,
// execute them for real, and advance per-device virtual clocks for the
// simulated-time accounting.
type genRun struct {
	pool  *Pool
	gen   int
	tasks []Task
	ctx   context.Context

	obsv poolObs // snapshot of the pool's handles for this generation

	mu         sync.Mutex
	cond       *sync.Cond
	queue      []*attemptMeta
	remaining  int
	done       []bool
	durations  []float64
	errs       []error
	startAlive []bool
	alive      []bool
	vt         []float64 // per-device virtual clock within the generation
	busyDev    []float64
	aliveEnd   []float64 // virtual death time of devices crashing this generation
	sumDur     float64   // successful-attempt duration statistics, for
	nDur       int       // sizing injected-failure losses
	retries    int
	faults     int
	lost       float64
	budget     int // remaining retries this generation; -1 = unlimited
	canceled   bool
}

// RunGeneration executes the tasks FIFO across the pool — each of the
// pool's worker goroutines takes the next task as soon as it finishes its
// previous one. Transient failures (injected by the fault plan or
// returned by tasks via Transient) are retried under the retry policy; a
// crashing device is drained and its work redistributed to survivors.
//
// All tasks run even if some fail: task errors are aggregated with
// errors.Join and returned alongside the report, and the generation's
// accounting (including completed tasks) is always committed. On a
// fault-free generation the deterministic FIFO list schedule is
// reconstructed in simulated time exactly as the paper models it (task k
// goes to the device that frees earliest); when faults, retries, or
// deadlines intervene, the accounting follows the dynamic schedule the
// dispatcher actually produced.
func (p *Pool) RunGeneration(ctx context.Context, tasks []Task) (*GenerationReport, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("sched: empty generation")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	gen := p.nextGen
	p.nextGen++
	n := len(p.devices)
	alive := make([]bool, n)
	aliveCount := 0
	for i := range p.devices {
		alive[i] = !p.dead[i]
		if alive[i] {
			aliveCount++
		}
	}
	obsv := p.obsv
	p.mu.Unlock()
	if aliveCount == 0 {
		return nil, fmt.Errorf("sched: no alive devices (all %d crashed)", n)
	}

	// The generation span parents every task span dispatched below; its
	// attributes carry the simulated accounting for telemetry.
	ctx, gspan := obs.StartSpan(ctx, obs.SpanGeneration)
	obsv.journal.Emit(obs.Event{
		Type:    obs.EventGenerationStart,
		Gen:     gen,
		Tasks:   len(tasks),
		Devices: aliveCount,
	})

	g := &genRun{
		pool:       p,
		gen:        gen,
		tasks:      tasks,
		ctx:        ctx,
		obsv:       obsv,
		remaining:  len(tasks),
		done:       make([]bool, len(tasks)),
		durations:  make([]float64, len(tasks)),
		errs:       make([]error, len(tasks)),
		startAlive: append([]bool(nil), alive...),
		alive:      alive,
		vt:         make([]float64, n),
		busyDev:    make([]float64, n),
		aliveEnd:   make([]float64, n),
		budget:     -1,
	}
	g.cond = sync.NewCond(&g.mu)
	if p.retry.Budget > 0 {
		g.budget = p.retry.Budget
	}
	for i := range tasks {
		g.queue = append(g.queue, &attemptMeta{task: i, attempt: 1})
	}

	// Wake waiting workers when the context is canceled.
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			g.mu.Lock()
			g.canceled = true
			g.cond.Broadcast()
			g.mu.Unlock()
		case <-stop:
		}
	}()

	var wg sync.WaitGroup
	for i, dev := range p.devices {
		if !alive[i] {
			continue
		}
		wg.Add(1)
		go func(dev Device) {
			defer wg.Done()
			g.work(dev)
		}(dev)
	}
	wg.Wait()
	close(stop)

	// Tasks left behind by cancellation or total device loss.
	for i := range tasks {
		if !g.done[i] {
			if err := ctx.Err(); err != nil {
				g.errs[i] = fmt.Errorf("sched: task %d: %w", i, err)
			} else {
				g.errs[i] = fmt.Errorf("sched: task %d: no alive device left", i)
			}
		}
	}
	var taskErrs []error
	for _, e := range g.errs {
		if e != nil {
			taskErrs = append(taskErrs, e)
		}
	}
	err := errors.Join(taskErrs...)

	var rep *GenerationReport
	if g.retries == 0 && g.faults == 0 {
		// Fault-free: reconstruct the deterministic FIFO list schedule
		// over the devices that were alive at generation start.
		rep = p.simulateFIFOOn(g.startAlive, g.durations)
	} else {
		rep = g.report()
	}

	p.mu.Lock()
	aliveAfter := 0
	for i := range g.alive {
		if !g.alive[i] {
			p.dead[i] = true
		} else {
			aliveAfter++
		}
	}
	p.wall += rep.WallSeconds
	busy := 0.0
	for _, b := range rep.DeviceBusy {
		p.busy += b
		busy += b
	}
	p.idle += rep.IdleSeconds
	p.tasks += len(tasks)
	p.retries += rep.Retries
	p.faults += rep.Faults
	p.lost += rep.LostSeconds
	p.mu.Unlock()

	obsv.generations.Inc()
	obsv.tasks.Add(len(tasks))
	obsv.genWall.Set(rep.WallSeconds)
	obsv.idle.Add(rep.IdleSeconds)
	flops := 0.0
	for i, b := range rep.DeviceBusy {
		if i < len(obsv.devBusy) {
			obsv.devBusy[i].Add(b)
		}
		if rep.WallSeconds > 0 && i < len(obsv.devUtil) {
			obsv.devUtil[i].Set(100 * b / rep.WallSeconds)
		}
		if i < len(p.devices) {
			flops += b * p.devices[i].Throughput
		}
	}
	// Effective simulated throughput this generation: FLOPs actually
	// processed over the generation makespan — the GFLOP/s trajectory
	// the cross-run regression monitor compares against a baseline.
	if rep.WallSeconds > 0 {
		obsv.gflops.Set(flops / rep.WallSeconds / 1e9)
	}
	gspan.SetInt("gen", gen)
	gspan.SetInt("tasks", len(tasks))
	gspan.SetFloat("wall_s", rep.WallSeconds)
	gspan.SetFloat("busy_s", busy)
	gspan.SetFloat("idle_s", rep.IdleSeconds)
	gspan.SetFloat("lost_s", rep.LostSeconds)
	gspan.SetInt("retries", rep.Retries)
	gspan.SetInt("faults", rep.Faults)
	gspan.End()
	obsv.journal.Emit(obs.Event{
		Type:        obs.EventGenerationEnd,
		Gen:         gen,
		Tasks:       len(tasks),
		Devices:     aliveAfter,
		WallSeconds: rep.WallSeconds,
		IdleSeconds: rep.IdleSeconds,
		LostSeconds: rep.LostSeconds,
		DeviceBusy:  append([]float64(nil), rep.DeviceBusy...),
		Retries:     rep.Retries,
		Faults:      rep.Faults,
	})
	return rep, err
}

// work is one device's dispatch loop.
func (g *genRun) work(dev Device) {
	p := g.pool
	completed := 0
	crashAfter, willCrash := 0, false
	if p.plan != nil {
		crashAfter, willCrash = p.plan.crashPoint(g.gen, dev.ID)
	}
	slow := 1.0
	if p.plan != nil {
		slow = p.plan.slowFactor(g.gen, dev.ID)
	}
	if slow > 1 {
		g.obsv.stragglers.Inc()
		g.obsv.journal.Emit(obs.Event{
			Type:       obs.EventStraggler,
			Gen:        g.gen,
			Device:     dev.ID,
			SlowFactor: slow,
		})
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.remaining == 0 || g.canceled {
			// A scheduled crash that never found its mid-generation
			// trigger (the device never reached its quota) still fires
			// at the barrier, so the next generation sees the device
			// gone; no in-flight work is lost in that case.
			if willCrash && g.aliveCount() > 1 {
				g.faults++
				g.obsv.faults.Inc()
				g.obsv.journal.Emit(obs.Event{
					Type:   obs.EventTaskFault,
					Gen:    g.gen,
					Device: dev.ID,
					Err:    "device crash at generation barrier",
				})
				g.markDead(dev)
			}
			return
		}
		att := g.pop(dev.ID)
		if att == nil {
			g.cond.Wait()
			continue
		}
		// Crash mid-generation: the device dies taking the popped
		// attempt down with it; the lost work is requeued at the head
		// (it was next in FIFO order) for the survivors.
		if willCrash && completed >= crashAfter && g.aliveCount() > 1 {
			loss := p.plan.failPointLoss(g.meanDur())
			g.busyDev[dev.ID] += loss
			g.vt[dev.ID] += loss
			g.lost += loss
			g.faults++
			g.retries++
			g.obsv.faults.Inc()
			g.obsv.retries.Inc()
			g.obsv.journal.Emit(obs.Event{
				Type:       obs.EventTaskFault,
				Gen:        g.gen,
				Task:       att.task,
				Attempt:    att.attempt,
				Device:     dev.ID,
				SimSeconds: loss,
				Err:        "device crash",
			})
			att.excludeDev(dev.ID)
			g.queue = append([]*attemptMeta{att}, g.queue...)
			g.markDead(dev)
			g.cond.Broadcast()
			return
		}
		// Injected transient failure: the attempt dies before the task
		// runs, wasting a deterministic fraction of a typical attempt.
		if p.plan != nil && p.plan.transient(g.gen, att.task, att.attempt) {
			loss := p.plan.failPointLoss(g.meanDur())
			g.busyDev[dev.ID] += loss
			g.vt[dev.ID] += loss
			completed++
			g.fail(att, dev, loss, Transient("injected", ErrInjectedFault))
			continue
		}

		start := g.vt[dev.ID]
		if att.notBefore > start {
			start = att.notBefore
		}
		// The task span parents the orchestrator's epoch spans (via
		// tc.Ctx) and the orchestrator annotates it with epochs trained
		// and saved; queue_wait_s is the simulated time the task waited
		// behind the FIFO queue.
		tctx, tspan := obs.StartSpan(g.ctx, obs.SpanTask)
		tspan.SetInt("gen", g.gen)
		tspan.SetInt("task", att.task)
		tspan.SetInt("attempt", att.attempt)
		tspan.SetInt("device", dev.ID)
		tspan.SetFloat("queue_wait_s", start)
		g.obsv.dispatches.Inc()
		g.obsv.queueWait.Observe(start)
		tc := TaskCtx{
			Ctx:             tctx,
			Dev:             dev,
			Generation:      g.gen,
			Task:            att.task,
			Attempt:         att.attempt,
			SlowFactor:      slow,
			DeadlineSeconds: p.deadline,
		}
		g.mu.Unlock()
		dispatch := obs.Event{
			Type:    obs.EventTaskDispatch,
			Gen:     g.gen,
			Task:    att.task,
			Attempt: att.attempt,
			Device:  dev.ID,
		}
		if slow > 1 {
			dispatch.SlowFactor = slow
		}
		g.obsv.journal.Emit(dispatch)
		dur, err := g.tasks[att.task](tc)
		tspan.SetFloat("sim_s", dur)
		if err != nil {
			tspan.SetAttr("error", err.Error())
		}
		tspan.End()
		g.mu.Lock()
		completed++
		g.busyDev[dev.ID] += dur
		g.vt[dev.ID] = start + dur
		switch {
		case err == nil:
			g.done[att.task] = true
			g.durations[att.task] = dur
			g.sumDur += dur
			g.nDur++
			g.remaining--
			g.obsv.taskLatency.Observe(dur)
			if g.remaining == 0 {
				g.cond.Broadcast()
			}
		case IsTransient(err) && g.ctx.Err() == nil:
			g.fail(att, dev, dur, err)
		default:
			g.errs[att.task] = fmt.Errorf("sched: task %d (attempt %d): %w", att.task, att.attempt, err)
			g.done[att.task] = true
			g.remaining--
			if g.remaining == 0 {
				g.cond.Broadcast()
			}
		}
	}
}

// fail books a transient failure: retry with backoff on another device
// when attempts and budget remain, otherwise fail the task. Callers hold
// g.mu.
func (g *genRun) fail(att *attemptMeta, dev Device, cost float64, cause error) {
	g.faults++
	g.lost += cost
	g.obsv.faults.Inc()
	g.obsv.journal.Emit(obs.Event{
		Type:       obs.EventTaskFault,
		Gen:        g.gen,
		Task:       att.task,
		Attempt:    att.attempt,
		Device:     dev.ID,
		SimSeconds: cost,
		Err:        cause.Error(),
	})
	maxAttempts := g.pool.retry.maxAttempts(g.pool.plan != nil)
	if att.attempt >= maxAttempts || g.budget == 0 {
		g.errs[att.task] = fmt.Errorf("sched: task %d failed after %d attempt(s): %w", att.task, att.attempt, cause)
		g.done[att.task] = true
		g.remaining--
		g.cond.Broadcast()
		return
	}
	if g.budget > 0 {
		g.budget--
	}
	g.retries++
	g.obsv.retries.Inc()
	att.attempt++
	att.excludeDev(dev.ID)
	att.notBefore = g.vt[dev.ID] + g.pool.retry.backoff(att.attempt)
	g.obsv.journal.Emit(obs.Event{
		Type:    obs.EventTaskRetry,
		Gen:     g.gen,
		Task:    att.task,
		Attempt: att.attempt,
		Device:  dev.ID,
	})
	g.queue = append(g.queue, att)
	g.cond.Broadcast()
}

// pop removes and returns the first queued attempt eligible for the
// device. An attempt whose exclusions cover every alive device has its
// exclusions cleared (better a previously failed device than deadlock).
// Callers hold g.mu.
func (g *genRun) pop(devID int) *attemptMeta {
	for qi, att := range g.queue {
		if att.exclude[devID] {
			if g.excludesAllAlive(att) {
				att.exclude = nil
			} else {
				continue
			}
		}
		g.queue = append(g.queue[:qi], g.queue[qi+1:]...)
		return att
	}
	return nil
}

func (g *genRun) excludesAllAlive(att *attemptMeta) bool {
	for i, a := range g.alive {
		if a && !att.exclude[i] {
			return false
		}
	}
	return true
}

func (g *genRun) aliveCount() int {
	n := 0
	for _, a := range g.alive {
		if a {
			n++
		}
	}
	return n
}

func (g *genRun) markDead(dev Device) {
	g.alive[dev.ID] = false
	g.aliveEnd[dev.ID] = g.vt[dev.ID]
}

func (g *genRun) meanDur() float64 {
	if g.nDur == 0 {
		return 0
	}
	return g.sumDur / float64(g.nDur)
}

// report assembles the accounting of a generation that saw faults or
// retries, following the dynamic schedule the dispatcher produced.
func (g *genRun) report() *GenerationReport {
	wall := 0.0
	for _, t := range g.vt {
		if t > wall {
			wall = t
		}
	}
	idle := 0.0
	for i := range g.pool.devices {
		if !g.startAlive[i] {
			continue
		}
		end := wall
		if !g.alive[i] {
			end = g.aliveEnd[i]
		}
		idle += end - g.busyDev[i]
	}
	return &GenerationReport{
		TaskSeconds: append([]float64(nil), g.durations...),
		DeviceBusy:  append([]float64(nil), g.busyDev...),
		WallSeconds: wall,
		IdleSeconds: idle,
		Retries:     g.retries,
		Faults:      g.faults,
		LostSeconds: g.lost,
	}
}

// simulateFIFO assigns tasks in order, each to the device that becomes
// available first (ties to the lowest ID), and computes the makespan.
func (p *Pool) simulateFIFO(durations []float64) *GenerationReport {
	all := make([]bool, len(p.devices))
	for i := range all {
		all[i] = true
	}
	return p.simulateFIFOOn(all, durations)
}

// simulateFIFOOn restricts the FIFO list schedule to the devices marked
// alive; DeviceBusy still spans the whole pool (dead devices stay 0).
func (p *Pool) simulateFIFOOn(alive []bool, durations []float64) *GenerationReport {
	var idx []int
	for i, a := range alive {
		if a {
			idx = append(idx, i)
		}
	}
	avail := make([]float64, len(idx))
	busy := make([]float64, len(p.devices))
	for _, d := range durations {
		best := 0
		for j := 1; j < len(avail); j++ {
			if avail[j] < avail[best] {
				best = j
			}
		}
		avail[best] += d
		busy[idx[best]] += d
	}
	wall := 0.0
	for _, a := range avail {
		if a > wall {
			wall = a
		}
	}
	idle := 0.0
	for _, i := range idx {
		idle += wall - busy[i]
	}
	return &GenerationReport{
		TaskSeconds: append([]float64(nil), durations...),
		DeviceBusy:  busy,
		WallSeconds: wall,
		IdleSeconds: idle,
	}
}

// AddOverhead charges extra simulated wall time not attributable to any
// device — the A4NN prediction-engine overhead the paper measures
// (~52 s per 100-model test).
func (p *Pool) AddOverhead(simSeconds float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wall += simSeconds
	p.overheads += simSeconds
}

// Totals summarises the pool's cumulative simulated accounting.
type Totals struct {
	WallSeconds     float64
	BusySeconds     float64
	IdleSeconds     float64
	OverheadSeconds float64
	Tasks           int
	Devices         int
	// Retries counts re-dispatched attempts across generations.
	Retries int
	// Faults counts fault events (injected errors, crashes, deadline
	// misses, real transient failures).
	Faults int
	// LostSeconds is the simulated time wasted on failed attempts.
	LostSeconds float64
	// DeadDevices counts devices lost to crashes.
	DeadDevices int
}

// Totals returns the accumulated accounting across all generations.
func (p *Pool) Totals() Totals {
	p.mu.Lock()
	defer p.mu.Unlock()
	deadCount := 0
	for _, d := range p.dead {
		if d {
			deadCount++
		}
	}
	return Totals{
		WallSeconds:     p.wall,
		BusySeconds:     p.busy,
		IdleSeconds:     p.idle,
		OverheadSeconds: p.overheads,
		Tasks:           p.tasks,
		Devices:         len(p.devices),
		Retries:         p.retries,
		Faults:          p.faults,
		LostSeconds:     p.lost,
		DeadDevices:     deadCount,
	}
}

// Reset clears the cumulative accounting and revives crashed devices
// (the device list and fault configuration are kept).
func (p *Pool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wall, p.busy, p.idle, p.overheads, p.tasks = 0, 0, 0, 0, 0
	p.retries, p.faults, p.lost, p.nextGen = 0, 0, 0, 0
	for i := range p.dead {
		p.dead[i] = false
	}
}
