// Package sched is the A4NN workflow resource manager (paper §2.5): it
// distributes NN training tasks across accelerators with the FIFO dynamic
// scheduling the paper borrows from Ray — when a network finishes
// training, the next network in the generation starts on the freed device
// — and it accounts for the generation barrier, whose end-of-generation
// idle time the paper calls out.
//
// Devices are simulated accelerators. Tasks really execute (one worker
// goroutine per device, so a 4-device pool genuinely trains four networks
// concurrently), and each task reports its cost in simulated seconds —
// computed by the caller from model FLOPs, dataset size, and the device
// throughput — so that paper-scale wall-clock numbers (tens of hours on a
// V100) are reproduced deterministically regardless of host speed.
package sched

import (
	"fmt"
	"sync"
)

// Device models one accelerator.
type Device struct {
	// ID indexes the device within its pool.
	ID int
	// Throughput is the effective training throughput in FLOPs/second.
	Throughput float64
}

// DefaultThroughput approximates an NVIDIA V100's effective mixed
// training throughput (far below peak): 2 TFLOP/s.
const DefaultThroughput = 2e12

// EpochCost returns the simulated seconds one training epoch costs on the
// device: samples · FLOPs/sample · backwardFactor / throughput. The
// conventional backwardFactor of 3 counts forward + ~2× backward.
func (d Device) EpochCost(flopsPerSample int64, samples int) float64 {
	const backwardFactor = 3
	return float64(flopsPerSample) * float64(samples) * backwardFactor / d.Throughput
}

// Task is one schedulable training job. It receives the device it runs on
// and returns its total cost in simulated seconds.
type Task func(dev Device) (simSeconds float64, err error)

// Pool is a fixed set of devices plus cumulative accounting across
// generations.
type Pool struct {
	devices []Device

	mu        sync.Mutex
	wall      float64 // total simulated wall seconds across generations
	busy      float64 // total simulated busy seconds across all devices
	idle      float64 // total simulated idle seconds (barrier waste)
	tasks     int
	overheads float64 // simulated seconds of per-task overhead added via AddOverhead
}

// NewPool creates a pool of n identical devices. throughput ≤ 0 selects
// DefaultThroughput.
func NewPool(n int, throughput float64) (*Pool, error) {
	if n < 1 {
		return nil, fmt.Errorf("sched: pool needs ≥ 1 device, got %d", n)
	}
	if throughput <= 0 {
		throughput = DefaultThroughput
	}
	p := &Pool{devices: make([]Device, n)}
	for i := range p.devices {
		p.devices[i] = Device{ID: i, Throughput: throughput}
	}
	return p, nil
}

// Size returns the number of devices.
func (p *Pool) Size() int { return len(p.devices) }

// Devices returns a copy of the device list.
func (p *Pool) Devices() []Device { return append([]Device(nil), p.devices...) }

// GenerationReport describes the simulated schedule of one generation.
type GenerationReport struct {
	// TaskSeconds is each task's simulated duration, in submission order.
	TaskSeconds []float64
	// DeviceBusy is the simulated busy time of each device.
	DeviceBusy []float64
	// WallSeconds is the generation's simulated makespan (the barrier:
	// the generation ends when its last task ends).
	WallSeconds float64
	// IdleSeconds sums each device's idle time under the barrier — the
	// downtime §2.5 describes when the generation size does not divide
	// the device count.
	IdleSeconds float64
}

// RunGeneration executes the tasks FIFO across the pool — each of the
// pool's worker goroutines takes the next task as soon as it finishes its
// previous one — then reconstructs the deterministic FIFO list schedule
// in simulated time (task k goes to the device that frees earliest).
// All tasks run even if some fail; the first error is returned after the
// generation completes so accounting stays consistent.
func (p *Pool) RunGeneration(tasks []Task) (*GenerationReport, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("sched: empty generation")
	}
	durations := make([]float64, len(tasks))
	errs := make([]error, len(tasks))
	next := make(chan int)
	var wg sync.WaitGroup
	for _, dev := range p.devices {
		wg.Add(1)
		go func(dev Device) {
			defer wg.Done()
			for i := range next {
				durations[i], errs[i] = tasks[i](dev)
			}
		}(dev)
	}
	for i := range tasks {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rep := p.simulateFIFO(durations)
	p.mu.Lock()
	p.wall += rep.WallSeconds
	for _, b := range rep.DeviceBusy {
		p.busy += b
	}
	p.idle += rep.IdleSeconds
	p.tasks += len(tasks)
	p.mu.Unlock()
	return rep, nil
}

// simulateFIFO assigns tasks in order, each to the device that becomes
// available first (ties to the lowest ID), and computes the makespan.
func (p *Pool) simulateFIFO(durations []float64) *GenerationReport {
	avail := make([]float64, len(p.devices))
	busy := make([]float64, len(p.devices))
	for _, d := range durations {
		best := 0
		for j := 1; j < len(avail); j++ {
			if avail[j] < avail[best] {
				best = j
			}
		}
		avail[best] += d
		busy[best] += d
	}
	wall := 0.0
	for _, a := range avail {
		if a > wall {
			wall = a
		}
	}
	idle := 0.0
	for _, b := range busy {
		idle += wall - b
	}
	return &GenerationReport{
		TaskSeconds: append([]float64(nil), durations...),
		DeviceBusy:  busy,
		WallSeconds: wall,
		IdleSeconds: idle,
	}
}

// AddOverhead charges extra simulated wall time not attributable to any
// device — the A4NN prediction-engine overhead the paper measures
// (~52 s per 100-model test).
func (p *Pool) AddOverhead(simSeconds float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wall += simSeconds
	p.overheads += simSeconds
}

// Totals summarises the pool's cumulative simulated accounting.
type Totals struct {
	WallSeconds     float64
	BusySeconds     float64
	IdleSeconds     float64
	OverheadSeconds float64
	Tasks           int
	Devices         int
}

// Totals returns the accumulated accounting across all generations.
func (p *Pool) Totals() Totals {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Totals{
		WallSeconds:     p.wall,
		BusySeconds:     p.busy,
		IdleSeconds:     p.idle,
		OverheadSeconds: p.overheads,
		Tasks:           p.tasks,
		Devices:         len(p.devices),
	}
}

// Reset clears the cumulative accounting (the device list is kept).
func (p *Pool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wall, p.busy, p.idle, p.overheads, p.tasks = 0, 0, 0, 0, 0
}
