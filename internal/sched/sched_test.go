package sched

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func constTask(d float64) Task {
	return func(tc TaskCtx) (float64, error) { return d, nil }
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(0, 0); err == nil {
		t.Fatal("0 devices must fail")
	}
	p, err := NewPool(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 4 {
		t.Fatalf("size %d", p.Size())
	}
	for i, d := range p.Devices() {
		if d.ID != i || d.Throughput != DefaultThroughput {
			t.Fatalf("device %d = %+v", i, d)
		}
	}
}

func TestEpochCost(t *testing.T) {
	d := Device{Throughput: 1e9}
	// 1e6 FLOPs/sample × 1000 samples × 3 / 1e9 = 3 seconds.
	if got := d.EpochCost(1e6, 1000); math.Abs(got-3) > 1e-12 {
		t.Fatalf("EpochCost = %v, want 3", got)
	}
}

func TestRunGenerationSingleDevice(t *testing.T) {
	p, _ := NewPool(1, 1e9)
	rep, err := p.RunGeneration(context.Background(), []Task{constTask(2), constTask(3), constTask(5)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WallSeconds != 10 {
		t.Fatalf("wall = %v, want 10 (serial)", rep.WallSeconds)
	}
	if rep.IdleSeconds != 0 {
		t.Fatalf("idle = %v, want 0 on one device", rep.IdleSeconds)
	}
}

func TestRunGenerationFIFOPlacement(t *testing.T) {
	p, _ := NewPool(2, 1e9)
	// FIFO: dev0←4, dev1←1, dev1←1 (frees at 2), dev1←1 (frees at 3).
	// Makespan 4; busy = [4, 3]; idle = 1.
	rep, err := p.RunGeneration(context.Background(), []Task{constTask(4), constTask(1), constTask(1), constTask(1)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WallSeconds != 4 {
		t.Fatalf("wall = %v, want 4", rep.WallSeconds)
	}
	if rep.IdleSeconds != 1 {
		t.Fatalf("idle = %v, want 1", rep.IdleSeconds)
	}
	if rep.DeviceBusy[0]+rep.DeviceBusy[1] != 7 {
		t.Fatalf("busy = %v", rep.DeviceBusy)
	}
}

func TestGenerationBarrierIdle(t *testing.T) {
	// 10 equal tasks on 4 devices: 3+3+2+2 → makespan 3 units, idle 2.
	p, _ := NewPool(4, 1e9)
	tasks := make([]Task, 10)
	for i := range tasks {
		tasks[i] = constTask(1)
	}
	rep, err := p.RunGeneration(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WallSeconds != 3 {
		t.Fatalf("wall = %v, want 3", rep.WallSeconds)
	}
	if rep.IdleSeconds != 2 {
		t.Fatalf("idle = %v, want 2 (barrier downtime)", rep.IdleSeconds)
	}
}

func TestRunGenerationExecutesConcurrently(t *testing.T) {
	p, _ := NewPool(4, 1e9)
	var peak, cur atomic.Int32
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = func(tc TaskCtx) (float64, error) {
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond) // hold the device so tasks overlap
			cur.Add(-1)
			return 1, nil
		}
	}
	if _, err := p.RunGeneration(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency %d; tasks did not overlap", peak.Load())
	}
}

func TestRunGenerationPropagatesErrors(t *testing.T) {
	p, _ := NewPool(2, 1e9)
	bad := func(tc TaskCtx) (float64, error) { return 0, fmt.Errorf("train failed") }
	if _, err := p.RunGeneration(context.Background(), []Task{constTask(1), bad}); err == nil {
		t.Fatal("task error must propagate")
	}
	if _, err := p.RunGeneration(context.Background(), nil); err == nil {
		t.Fatal("empty generation must fail")
	}
}

func TestTotalsAccumulate(t *testing.T) {
	p, _ := NewPool(2, 1e9)
	if _, err := p.RunGeneration(context.Background(), []Task{constTask(2), constTask(2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunGeneration(context.Background(), []Task{constTask(4)}); err != nil {
		t.Fatal(err)
	}
	p.AddOverhead(0.5)
	tot := p.Totals()
	if tot.WallSeconds != 2+4+0.5 {
		t.Fatalf("wall = %v", tot.WallSeconds)
	}
	if tot.BusySeconds != 8 {
		t.Fatalf("busy = %v", tot.BusySeconds)
	}
	if tot.IdleSeconds != 4 { // second generation leaves device 1 idle 4s
		t.Fatalf("idle = %v", tot.IdleSeconds)
	}
	if tot.Tasks != 3 || tot.Devices != 2 || tot.OverheadSeconds != 0.5 {
		t.Fatalf("totals %+v", tot)
	}
	p.Reset()
	if p.Totals().WallSeconds != 0 || p.Totals().Tasks != 0 {
		t.Fatal("Reset must clear accounting")
	}
}

// Property: for any task durations, the FIFO makespan lies between
// sum/len(devices) (perfect balance) and sum (fully serial), and never
// below the longest task.
func TestFIFOMakespanBounds(t *testing.T) {
	f := func(raw []uint8, devs uint8) bool {
		n := int(devs%4) + 1
		if len(raw) == 0 {
			return true
		}
		p, err := NewPool(n, 1e9)
		if err != nil {
			return false
		}
		durations := make([]float64, len(raw))
		sum, longest := 0.0, 0.0
		for i, r := range raw {
			durations[i] = float64(r%50) + 1
			sum += durations[i]
			if durations[i] > longest {
				longest = durations[i]
			}
		}
		rep := p.simulateFIFO(durations)
		if rep.WallSeconds < longest-1e-9 || rep.WallSeconds > sum+1e-9 {
			return false
		}
		if rep.WallSeconds < sum/float64(n)-1e-9 {
			return false
		}
		// Busy time conservation.
		busy := 0.0
		for _, b := range rep.DeviceBusy {
			busy += b
		}
		return math.Abs(busy-sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFourDevicesNearLinear mirrors Figure 9's scalability claim: many
// similar tasks on 4 devices finish in ≈ 1/4 the simulated wall time.
func TestFourDevicesNearLinear(t *testing.T) {
	mk := func(n int) []Task {
		tasks := make([]Task, 100)
		for i := range tasks {
			tasks[i] = constTask(10 + float64(i%5))
		}
		return tasks
	}
	p1, _ := NewPool(1, 1e9)
	r1, err := p1.RunGeneration(context.Background(), mk(100))
	if err != nil {
		t.Fatal(err)
	}
	p4, _ := NewPool(4, 1e9)
	r4, err := p4.RunGeneration(context.Background(), mk(100))
	if err != nil {
		t.Fatal(err)
	}
	speedup := r1.WallSeconds / r4.WallSeconds
	if speedup < 3.5 || speedup > 4.0 {
		t.Fatalf("4-device speedup %v, want ≈4×", speedup)
	}
}

func TestSimulateFIFOExported(t *testing.T) {
	rep, err := SimulateFIFO(2, []float64{4, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WallSeconds != 4 {
		t.Fatalf("wall %v", rep.WallSeconds)
	}
	if _, err := SimulateFIFO(2, nil); err == nil {
		t.Fatal("empty durations must fail")
	}
	if _, err := SimulateFIFO(0, []float64{1}); err == nil {
		t.Fatal("0 devices must fail")
	}
}

func TestSimulateRoundRobin(t *testing.T) {
	// Round-robin: dev0 gets 4+1=5, dev1 gets 1+1=2 → wall 5, idle 3.
	rep, err := SimulateRoundRobin(2, []float64{4, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WallSeconds != 5 || rep.IdleSeconds != 3 {
		t.Fatalf("round robin wall=%v idle=%v", rep.WallSeconds, rep.IdleSeconds)
	}
	if _, err := SimulateRoundRobin(0, []float64{1}); err == nil {
		t.Fatal("0 devices must fail")
	}
	if _, err := SimulateRoundRobin(2, nil); err == nil {
		t.Fatal("empty durations must fail")
	}
}

// Property: FIFO greedy list scheduling satisfies Graham's bound — its
// makespan is within (2 − 1/n) of the trivial lower bound
// max(longest task, total/n) — while static round-robin has no such
// guarantee (its makespan can approach the serial total).
func TestFIFOGrahamBoundProperty(t *testing.T) {
	f := func(raw []uint8, devs uint8) bool {
		if len(raw) == 0 {
			return true
		}
		n := int(devs%4) + 1
		durations := make([]float64, len(raw))
		sum, longest := 0.0, 0.0
		for i, r := range raw {
			durations[i] = float64(r%60) + 1
			sum += durations[i]
			if durations[i] > longest {
				longest = durations[i]
			}
		}
		lower := math.Max(longest, sum/float64(n))
		fifo, err := SimulateFIFO(n, durations)
		if err != nil {
			return false
		}
		rr, err := SimulateRoundRobin(n, durations)
		if err != nil {
			return false
		}
		if fifo.WallSeconds > (2-1/float64(n))*lower+1e-9 {
			return false
		}
		// Round-robin is valid but unguided: it can only be bounded by the
		// serial total.
		return rr.WallSeconds <= sum+1e-9 && rr.WallSeconds >= lower-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFIFOBeatsRoundRobinOnStragglers shows the ablation's typical case:
// when early-terminated (short) tasks mix with full-budget (long) ones,
// FIFO packs around the stragglers while round-robin stacks them.
func TestFIFOBeatsRoundRobinOnStragglers(t *testing.T) {
	durations := []float64{25, 5, 5, 5, 25, 5} // RR piles both 25s on device 0
	fifo, err := SimulateFIFO(2, durations)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := SimulateRoundRobin(2, durations)
	if err != nil {
		t.Fatal(err)
	}
	if fifo.WallSeconds >= rr.WallSeconds {
		t.Fatalf("FIFO %v should beat round-robin %v here", fifo.WallSeconds, rr.WallSeconds)
	}
}
