package sched

import "fmt"

// SimulateFIFO computes the FIFO dynamic list schedule (Ray-style, the
// paper's policy) for the given task durations on n identical devices and
// returns its accounting. It runs no tasks; use it for what-if analysis
// and the scheduling ablation.
func SimulateFIFO(n int, durations []float64) (*GenerationReport, error) {
	p, err := NewPool(n, 1)
	if err != nil {
		return nil, err
	}
	if len(durations) == 0 {
		return nil, fmt.Errorf("sched: no durations")
	}
	return p.simulateFIFO(durations), nil
}

// SimulateRoundRobin computes a static round-robin schedule (task k on
// device k mod n) for the same durations — the naive alternative the
// FIFO ablation compares against. Static assignment cannot react to
// early-terminated (short) tasks, so its makespan is never better and
// typically worse than FIFO's when durations vary.
func SimulateRoundRobin(n int, durations []float64) (*GenerationReport, error) {
	if n < 1 {
		return nil, fmt.Errorf("sched: need ≥ 1 device, got %d", n)
	}
	if len(durations) == 0 {
		return nil, fmt.Errorf("sched: no durations")
	}
	busy := make([]float64, n)
	for i, d := range durations {
		busy[i%n] += d
	}
	wall := 0.0
	for _, b := range busy {
		if b > wall {
			wall = b
		}
	}
	idle := 0.0
	for _, b := range busy {
		idle += wall - b
	}
	return &GenerationReport{
		TaskSeconds: append([]float64(nil), durations...),
		DeviceBusy:  busy,
		WallSeconds: wall,
		IdleSeconds: idle,
	}, nil
}
