// Package simtrain provides a calibrated surrogate trainer: instead of
// running gradient descent, it draws each network's learning curve from
// the paper's own parametric family F(e) = a − b^(c−e) plus noise, with
// parameters that depend on the genome's capacity and the beam
// intensity's signal-to-noise ratio.
//
// This is the same device PENGUIN's authors used to evaluate their engine
// on MENNDL ("their engine's effects were simulated", paper §5): the
// prediction engine, orchestrator, scheduler, and NAS all exercise their
// real code paths, while the 100-network × 25-epoch × 3-beam × 2-mode ×
// 2-pool experiment grid of Figures 6–9 completes in seconds. The beam
// profiles are calibrated so the termination-epoch distributions match
// Figure 8's qualitative shapes (low: late convergence, ~60% terminated;
// medium: early, >70%; high: bimodal, ~55%). internal/core's RealTrainer
// provides the genuine end-to-end path on the same interfaces.
package simtrain

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"a4nn/internal/core"
	"a4nn/internal/genome"
	"a4nn/internal/xfel"
)

// BeamProfile parameterises the surrogate learning-curve distribution for
// one beam intensity.
type BeamProfile struct {
	// Asymptote bounds the achievable validation accuracy a.
	AsymptoteMin, AsymptoteMax float64
	// Start bounds the epoch-1 accuracy; the curve offset c is derived
	// from it as c = ln(a−s₀)/β + 1 so every curve genuinely climbs from
	// near-random accuracy instead of being born saturated.
	StartMin, StartMax float64
	// Rate bounds the learning-rate parameter β (b = e^β).
	RateMin, RateMax float64
	// Noise is the innovation scale of the AR(1) drift added to
	// well-behaved curves. Real learning curves deviate from the ideal
	// parametric family with slow, autocorrelated wander (data-order
	// effects, LR-schedule kinks), and it is exactly that wander that
	// delays the prediction analyzer's convergence — i.i.d. jitter
	// averages out under the least-squares fit and would let everything
	// terminate unrealistically early.
	Noise float64
	// Rho is the AR(1) autocorrelation of the drift (default 0.85 when 0).
	Rho float64
	// FailureRate is the fraction of networks that fail to learn
	// (the paper cites up to 88% in early NAS generations; by Table 2's
	// small search the realised fraction is lower).
	FailureRate float64
	// FailureAsymptote is the accuracy failed networks hover around.
	FailureAsymptote float64
	// HardFraction of networks have near-linear fitness curves that the
	// concave family fits poorly — their extrapolations keep drifting or
	// escape the [0,100] validity bounds, so the analyzer converges late
	// or never, which is what produces the non-terminated share of
	// Figure 8. HardNoise/HardRho set those curves' AR(1) drift;
	// HardRise bounds the rise length in epochs and HardTarget the
	// accuracy the riser heads toward (targets near 100 push the fitted
	// asymptote out of the validity bounds).
	// TailMin/TailMax bound a slow linear creep (accuracy points per
	// epoch) added to well-behaved curves: real fitness keeps inching up
	// relative to the ideal concave family, and that systematic drift is
	// what pushes convergence late on noisy datasets.
	TailMin, TailMax float64
	HardFraction     float64
	HardNoise        float64
	HardRho          float64
	HardRiseMin      float64
	HardRiseMax      float64
	HardTargetMin    float64
	HardTargetMax    float64
}

// ProfileFor returns the calibrated profile of a beam intensity.
func ProfileFor(beam xfel.BeamIntensity) BeamProfile {
	switch beam {
	case xfel.LowBeam:
		// Noisy data: slow, drifty curves → predictions converge late and
		// for barely more than half the models (Fig. 8: mean e_t > 18,
		// >60% terminated; Fig. 7: only 13.3% of epochs saved).
		return BeamProfile{
			AsymptoteMin: 85, AsymptoteMax: 99.8,
			StartMin: 42, StartMax: 52,
			RateMin: 0.035, RateMax: 0.07,
			Noise:       0.70,
			FailureRate: 0.06, FailureAsymptote: 55,
			TailMin: 0.10, TailMax: 0.22,
			HardFraction: 0.50, HardNoise: 0.35, HardRho: 0.5,
			HardRiseMin: 26, HardRiseMax: 36,
			HardTargetMin: 101, HardTargetMax: 106,
		}
	case xfel.MediumBeam:
		// Cleaner, faster curves → early convergence for most models
		// (Fig. 8: mean e_t < 12.5, >70% terminated; 34.1% epochs saved).
		return BeamProfile{
			AsymptoteMin: 92, AsymptoteMax: 99.9,
			StartMin: 50, StartMax: 62,
			RateMin: 0.13, RateMax: 0.28,
			Noise:       0.28,
			FailureRate: 0.08, FailureAsymptote: 58,
			TailMin: 0.03, TailMax: 0.10,
			HardFraction: 0.47, HardNoise: 0.5, HardRho: 0.6,
			HardRiseMin: 22, HardRiseMax: 30,
			HardTargetMin: 102, HardTargetMax: 107,
		}
	default: // high
		// Clean data: most curves saturate very fast, but a large
		// minority keep climbing — Figure 8's inverted bell with only
		// ~55% terminated at a mean e_t ≈ 10 (30.5% epochs saved).
		return BeamProfile{
			AsymptoteMin: 95, AsymptoteMax: 100,
			StartMin: 55, StartMax: 70,
			RateMin: 0.4, RateMax: 0.8,
			Noise:       0.1,
			FailureRate: 0.05, FailureAsymptote: 60,
			TailMin: 0, TailMax: 0.03,
			HardFraction: 0.72, HardNoise: 0.3, HardRho: 0.6,
			HardRiseMin: 22, HardRiseMax: 30,
			HardTargetMin: 102, HardTargetMax: 108,
		}
	}
}

// Validate reports the first problem with the profile, or nil.
func (p BeamProfile) Validate() error {
	if p.AsymptoteMin <= 0 || p.AsymptoteMax < p.AsymptoteMin {
		return fmt.Errorf("simtrain: bad asymptote range [%v,%v]", p.AsymptoteMin, p.AsymptoteMax)
	}
	if p.StartMin <= 0 || p.StartMax < p.StartMin || p.StartMax >= p.AsymptoteMin {
		return fmt.Errorf("simtrain: bad start range [%v,%v] for asymptote ≥ %v", p.StartMin, p.StartMax, p.AsymptoteMin)
	}
	if p.RateMin <= 0 || p.RateMax < p.RateMin {
		return fmt.Errorf("simtrain: bad rate range [%v,%v]", p.RateMin, p.RateMax)
	}
	if p.Noise < 0 || p.HardNoise < 0 {
		return fmt.Errorf("simtrain: negative noise")
	}
	if p.FailureRate < 0 || p.FailureRate > 1 || p.HardFraction < 0 || p.HardFraction > 1 {
		return fmt.Errorf("simtrain: fractions outside [0,1]")
	}
	if p.HardFraction > 0 {
		if p.HardRiseMin <= 0 || p.HardRiseMax < p.HardRiseMin {
			return fmt.Errorf("simtrain: bad hard rise range [%v,%v]", p.HardRiseMin, p.HardRiseMax)
		}
		if p.HardTargetMin <= p.StartMax || p.HardTargetMax < p.HardTargetMin {
			return fmt.Errorf("simtrain: bad hard target range [%v,%v]", p.HardTargetMin, p.HardTargetMax)
		}
	}
	return nil
}

// Trainer is the surrogate implementation of core.Trainer.
type Trainer struct {
	profile BeamProfile
	decode  genome.DecodeConfig
	samples int
}

// PaperTrainSamples is the paper's training-split size (§3.2).
const PaperTrainSamples = 63508

// New builds a surrogate trainer. samples sets the pretend training-set
// size used by the simulated epoch-cost model; 0 selects the paper's
// 63,508 images so wall-time numbers land at paper scale (hours).
func New(profile BeamProfile, decode genome.DecodeConfig, samples int) (*Trainer, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if samples == 0 {
		samples = PaperTrainSamples
	}
	if samples < 1 {
		return nil, fmt.Errorf("simtrain: samples must be ≥ 1, got %d", samples)
	}
	return &Trainer{profile: profile, decode: decode, samples: samples}, nil
}

// ForBeam is a convenience constructor with the beam's calibrated profile
// and the paper-scale decode configuration (128×128 inputs), so FLOPs and
// simulated wall times land in the paper's ranges.
func ForBeam(beam xfel.BeamIntensity) (*Trainer, error) {
	return New(ProfileFor(beam), genome.PaperDecodeConfig(), 0)
}

// TrainSamples implements core.Trainer.
func (t *Trainer) TrainSamples() int { return t.samples }

// NewModel implements core.Trainer: curve parameters are drawn
// deterministically from (genome, seed), with the genome's capacity
// (active nodes, FLOPs) nudging the achievable accuracy — bigger
// architectures tend to learn more, which is what gives the NAS a real
// accuracy/FLOPs trade-off to explore.
func (t *Trainer) NewModel(g *genome.Genome, seed int64) (core.Trainable, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	net, err := genome.Decode(g, t.decode, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	flops, err := net.FLOPs()
	if err != nil {
		return nil, err
	}

	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", g.String(), seed)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	active := 0
	for p := range g.Phases {
		active += g.ActiveNodes(p)
	}
	maxActive := len(g.Phases) * g.NodesPerPhase
	capacity := float64(active) / float64(maxActive) // 0..1

	p := t.profile
	rho := p.Rho
	if rho == 0 {
		rho = 0.85
	}
	m := &model{
		trainer: t,
		flops:   flops,
		params:  net.NumParams(),
		desc:    net.Describe(),
		rng:     rng,
		noise:   p.Noise,
		rho:     rho,
	}
	switch {
	case rng.Float64() < p.FailureRate:
		// Failed-to-learn network: flat, low, noisy.
		m.a = p.FailureAsymptote + rng.NormFloat64()*4
		m.beta = 0.05 + rng.Float64()*0.05
		m.c = rng.Float64() * 2
		m.noise = p.Noise * 2
	default:
		quality := 0.45*capacity + 0.55*rng.Float64()
		m.a = p.AsymptoteMin + quality*(p.AsymptoteMax-p.AsymptoteMin)
		m.beta = p.RateMin + rng.Float64()*(p.RateMax-p.RateMin)
		start := p.StartMin + rng.Float64()*(p.StartMax-p.StartMin)
		gap := m.a - start
		if gap < 5 {
			gap = 5
		}
		// Solve a − e^{β(c−1)} = start for c so the curve starts at
		// `start` and climbs toward a.
		m.c = math.Log(gap)/m.beta + 1
		m.tail = p.TailMin + rng.Float64()*(p.TailMax-p.TailMin)
		// Keep the creeping curve inside [0,100] over the full budget.
		if lim := 99.9 - m.tail*24; m.a > lim {
			m.a = lim
		}
		if rng.Float64() < p.HardFraction {
			// Near-linear riser heading toward ~100%: the concave fit
			// either keeps drifting or extrapolates past the validity
			// bound, delaying or blocking convergence.
			m.linear = true
			m.start = start
			m.riseLen = p.HardRiseMin + rng.Float64()*(p.HardRiseMax-p.HardRiseMin)
			m.a = p.HardTargetMin + rng.Float64()*(p.HardTargetMax-p.HardTargetMin)
			m.noise = p.HardNoise
			m.rho = p.HardRho
		}
	}
	if m.a > 100 {
		m.a = 100
	}
	return m, nil
}

// model is one surrogate network.
type model struct {
	trainer    *Trainer
	a, beta, c float64
	linear     bool    // near-linear riser instead of the concave family
	start      float64 // riser start accuracy
	riseLen    float64 // riser length in epochs
	tail       float64 // linear creep added to concave curves
	noise      float64 // AR(1) innovation scale
	rho        float64 // AR(1) autocorrelation
	ar         float64 // current drift state
	rng        *rand.Rand
	epoch      int
	lastVal    float64
	flops      int64
	params     int
	desc       string
}

// TrainEpoch implements core.Trainable.
func (m *model) TrainEpoch() (core.EpochMetrics, error) {
	m.epoch++
	e := float64(m.epoch)
	m.ar = m.rho*m.ar + m.rng.NormFloat64()*m.noise
	var val float64
	if m.linear {
		frac := (e - 1) / m.riseLen
		if frac > 1 {
			frac = 1
		}
		val = m.start + (m.a-m.start)*frac + m.ar
	} else {
		val = m.a - math.Exp(m.beta*(m.c-e)) + m.tail*(e-1) + m.ar
	}
	if val < 0 {
		val = 0
	}
	if val > 100 {
		val = 100
	}
	m.lastVal = val
	train := val + 1.5 + m.rng.NormFloat64()*0.3 // mild overfit gap
	if train > 100 {
		train = 100
	}
	loss := math.Max(0.01, (100-val)/50+m.rng.NormFloat64()*0.02)
	return core.EpochMetrics{TrainLoss: loss, TrainAccuracy: train, ValAccuracy: val}, nil
}

// SaveState implements core.Trainable: the surrogate's state is its curve.
func (m *model) SaveState() ([]byte, error) {
	return json.Marshal(map[string]float64{
		"a": m.a, "beta": m.beta, "c": m.c,
		"epoch": float64(m.epoch), "last_val": m.lastVal,
	})
}

// FLOPs implements core.Trainable.
func (m *model) FLOPs() int64 { return m.flops }

// NumParams implements core.Trainable.
func (m *model) NumParams() int { return m.params }

// Describe implements core.Trainable.
func (m *model) Describe() string { return m.desc }
