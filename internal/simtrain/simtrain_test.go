package simtrain

import (
	"context"
	"math/rand"
	"testing"

	"a4nn/internal/core"
	"a4nn/internal/dataset"
	"a4nn/internal/genome"
	"a4nn/internal/predict"
	"a4nn/internal/sched"
	"a4nn/internal/xfel"
)

func TestProfilesValidate(t *testing.T) {
	for _, beam := range xfel.AllBeams {
		if err := ProfileFor(beam).Validate(); err != nil {
			t.Fatalf("%s profile: %v", beam, err)
		}
	}
}

func TestProfileValidationRejectsBad(t *testing.T) {
	base := ProfileFor(xfel.MediumBeam)
	cases := []struct {
		name string
		mut  func(*BeamProfile)
	}{
		{"asymptote", func(p *BeamProfile) { p.AsymptoteMax = p.AsymptoteMin - 1 }},
		{"start", func(p *BeamProfile) { p.StartMax = p.AsymptoteMin + 1 }},
		{"rate", func(p *BeamProfile) { p.RateMin = 0 }},
		{"noise", func(p *BeamProfile) { p.Noise = -1 }},
		{"failure", func(p *BeamProfile) { p.FailureRate = 2 }},
		{"hard rise", func(p *BeamProfile) { p.HardRiseMin = 0 }},
		{"hard target", func(p *BeamProfile) { p.HardTargetMax = 1 }},
	}
	for _, tc := range cases {
		p := base
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(BeamProfile{}, genome.DefaultDecodeConfig(), 0); err == nil {
		t.Fatal("empty profile must fail")
	}
	if _, err := New(ProfileFor(xfel.LowBeam), genome.DefaultDecodeConfig(), -1); err == nil {
		t.Fatal("negative samples must fail")
	}
	tr, err := New(ProfileFor(xfel.LowBeam), genome.DefaultDecodeConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TrainSamples() != PaperTrainSamples {
		t.Fatalf("default samples %d", tr.TrainSamples())
	}
}

func TestNewModelDeterministic(t *testing.T) {
	tr, err := ForBeam(xfel.MediumBeam)
	if err != nil {
		t.Fatal(err)
	}
	g, err := genome.NewRandom(rand.New(rand.NewSource(1)), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := tr.NewModel(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := tr.NewModel(g, 42)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 10; e++ {
		a, err := m1.TrainEpoch()
		if err != nil {
			t.Fatal(err)
		}
		b, err := m2.TrainEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if a.ValAccuracy != b.ValAccuracy {
			t.Fatalf("epoch %d diverged: %v vs %v", e+1, a.ValAccuracy, b.ValAccuracy)
		}
	}
	// Different seed → different curve.
	m3, err := tr.NewModel(g, 43)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	m4, _ := tr.NewModel(g, 42)
	for e := 0; e < 10; e++ {
		a, _ := m3.TrainEpoch()
		b, _ := m4.TrainEpoch()
		if a.ValAccuracy != b.ValAccuracy {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds must yield different curves")
	}
}

func TestModelMetadata(t *testing.T) {
	tr, err := ForBeam(xfel.HighBeam)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := genome.Parse("1111111|1111111|1111111", 4)
	m, err := tr.NewModel(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.FLOPs() <= 0 || m.NumParams() <= 0 || m.Describe() == "" {
		t.Fatalf("metadata missing: flops=%d params=%d", m.FLOPs(), m.NumParams())
	}
	// Paper-scale FLOPs land in the hundreds of MFLOPs.
	mflops := float64(m.FLOPs()) / 1e6
	if mflops < 50 || mflops > 5000 {
		t.Fatalf("dense genome MFLOPs %v outside paper-scale range", mflops)
	}
	state, err := m.SaveState()
	if err != nil || len(state) == 0 {
		t.Fatalf("SaveState: %v", err)
	}
}

func TestCurvesStayInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, beam := range xfel.AllBeams {
		tr, err := ForBeam(beam)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			g, _ := genome.NewRandom(rng, 3, 4)
			m, err := tr.NewModel(g, int64(i))
			if err != nil {
				t.Fatal(err)
			}
			prev := -1.0
			for e := 0; e < 25; e++ {
				met, err := m.TrainEpoch()
				if err != nil {
					t.Fatal(err)
				}
				if met.ValAccuracy < 0 || met.ValAccuracy > 100 {
					t.Fatalf("%s model %d epoch %d: accuracy %v", beam, i, e+1, met.ValAccuracy)
				}
				if met.TrainAccuracy < 0 || met.TrainAccuracy > 100 {
					t.Fatalf("train accuracy %v out of bounds", met.TrainAccuracy)
				}
				if met.TrainLoss <= 0 {
					t.Fatalf("loss %v not positive", met.TrainLoss)
				}
				prev = met.ValAccuracy
			}
			_ = prev
		}
	}
}

// trainCohort runs n surrogate models under the prediction engine and
// returns (terminated fraction, mean e_t, epoch-saved fraction).
func trainCohort(t *testing.T, beam xfel.BeamIntensity, n int) (termFrac, meanEt, savedFrac float64) {
	t.Helper()
	eng, err := predict.NewEngine(predict.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ForBeam(beam)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	term, sumEt, totalEpochs := 0, 0, 0
	for i := 0; i < n; i++ {
		g, _ := genome.NewRandom(rng, 3, 4)
		m, err := tr.NewModel(g, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		orch := &core.Orchestrator{Engine: eng, MaxEpochs: 25}
		out, err := orch.TrainModel(context.Background(), m, sched.Device{Throughput: 1e12}, 100, nil)
		if err != nil {
			t.Fatal(err)
		}
		totalEpochs += out.EpochsTrained
		if out.Terminated {
			term++
			sumEt += out.EpochsTrained
		}
	}
	termFrac = float64(term) / float64(n)
	if term > 0 {
		meanEt = float64(sumEt) / float64(term)
	}
	savedFrac = 1 - float64(totalEpochs)/float64(n*25)
	return termFrac, meanEt, savedFrac
}

// TestCalibrationShapes verifies the Figure 7/8 shape constraints the
// profiles were calibrated to (with generous tolerances: these are
// stochastic cohorts of 150 models).
func TestCalibrationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("cohort calibration in -short mode")
	}
	lowTerm, lowEt, lowSaved := trainCohort(t, xfel.LowBeam, 150)
	medTerm, medEt, medSaved := trainCohort(t, xfel.MediumBeam, 150)
	highTerm, highEt, highSaved := trainCohort(t, xfel.HighBeam, 150)

	// Figure 7: medium saves the most epochs, low the least.
	if !(medSaved > highSaved && highSaved > lowSaved) {
		t.Errorf("epoch savings ordering violated: low=%.2f med=%.2f high=%.2f", lowSaved, medSaved, highSaved)
	}
	if lowSaved < 0.05 || lowSaved > 0.35 {
		t.Errorf("low savings %.2f outside band", lowSaved)
	}
	if medSaved < 0.25 || medSaved > 0.50 {
		t.Errorf("medium savings %.2f outside band", medSaved)
	}
	// Figure 8: low converges latest; medium terminated fraction highest;
	// high terminates earliest.
	if !(lowEt > medEt && lowEt > highEt) {
		t.Errorf("e_t ordering violated: low=%.1f med=%.1f high=%.1f", lowEt, medEt, highEt)
	}
	if medTerm < 0.6 {
		t.Errorf("medium terminated fraction %.2f too small", medTerm)
	}
	if lowTerm < 0.4 || highTerm < 0.4 {
		t.Errorf("terminated fractions low=%.2f high=%.2f too small", lowTerm, highTerm)
	}
	if medEt > 14 {
		t.Errorf("medium mean e_t %.1f too late", medEt)
	}
}

func TestNewModelRejectsBadGenome(t *testing.T) {
	tr, err := ForBeam(xfel.LowBeam)
	if err != nil {
		t.Fatal(err)
	}
	bad := &genome.Genome{NodesPerPhase: 4, Phases: [][]byte{{9}}}
	if _, err := tr.NewModel(bad, 1); err == nil {
		t.Fatal("invalid genome must fail")
	}
}

// TestSurrogateMatchesRealTrainerQualitatively backs DESIGN.md's claim
// that the surrogate is calibrated against the real trainer: a genuinely
// trained network's learning curve must look like the surrogate's
// curves — rising from near-chance toward a plateau, within fitness
// bounds — and drive the prediction engine through the same code path.
func TestSurrogateMatchesRealTrainerQualitatively(t *testing.T) {
	if testing.Short() {
		t.Skip("real training in -short mode")
	}
	params := xfel.DefaultSimulatorParams()
	params.Size = 16
	sim, err := xfel.NewSimulator(3, params)
	if err != nil {
		t.Fatal(err)
	}
	pats, err := sim.GenerateBatch(1, 160, xfel.HighBeam)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.FromPatterns(pats)
	if err != nil {
		t.Fatal(err)
	}
	train, val, err := ds.Split(0.8, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	real, err := core.NewRealTrainer(train, val, core.RealTrainerConfig{
		Decode: genome.DecodeConfig{InShape: []int{1, 16, 16}, Widths: []int{4, 8, 8}, NumClasses: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := genome.Parse("1010001|1100111|1000000", 4)
	if err != nil {
		t.Fatal(err)
	}
	model, err := real.NewModel(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	var curve []float64
	for e := 0; e < 12; e++ {
		m, err := model.TrainEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if m.ValAccuracy < 0 || m.ValAccuracy > 100 {
			t.Fatalf("real accuracy %v out of bounds", m.ValAccuracy)
		}
		curve = append(curve, m.ValAccuracy)
	}
	// Rising, noisy curve that clearly beats chance — the same
	// qualitative family (trend + wander) the surrogate draws from.
	tail := (curve[9] + curve[10] + curve[11]) / 3
	best := 0.0
	for _, v := range curve {
		if v > best {
			best = v
		}
	}
	if tail < curve[0]+5 {
		t.Fatalf("real curve not rising: %v", curve)
	}
	if best < 70 {
		t.Fatalf("real curve best %v too low: %v", best, curve)
	}
	// The same engine consumes both: feed the real curve to the engine
	// with e_pred at the end of this budget.
	cfg := predict.DefaultConfig()
	cfg.EPred = 12
	eng, err := predict.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := predict.NewTracker(eng)
	for _, v := range curve {
		if tr.Observe(v) {
			break
		}
	}
	if f, ok := tr.FinalFitness(); !ok || f < 0 || f > 100 {
		t.Fatalf("engine on real curve produced %v, %v", f, ok)
	}
}
