package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkMatMul measures the square GEMM at the sizes the conv and dense
// layers actually produce (small head matrices up to large batched im2col
// products), writing into a preallocated destination as the training hot
// path does. 1024 is skipped under -short so the ci smoke run stays fast.
func BenchmarkMatMul(b *testing.B) {
	for _, size := range []int{64, 256, 1024} {
		if testing.Short() && size > 256 {
			continue
		}
		b.Run(fmt.Sprint(size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := Randn(rng, 0, 1, size, size)
			bb := Randn(rng, 0, 1, size, size)
			dst := New(size, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := MatMulInto(a, bb, dst); err != nil {
					b.Fatal(err)
				}
			}
			flops := 2 * float64(size) * float64(size) * float64(size)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

// BenchmarkIm2ColBatch measures unrolling a full NCHW batch into the
// (C·kh·kw, N·oh·ow) matrix consumed by the convolution GEMM, each sample
// written directly into its strided slot.
func BenchmarkIm2ColBatch(b *testing.B) {
	const (
		n, c, h, w     = 16, 8, 28, 28
		kh, kw, st, pd = 3, 3, 1, 1
	)
	rng := rand.New(rand.NewSource(2))
	x := Randn(rng, 0, 1, n, c, h, w)
	oh, _ := ConvOutSize(h, kh, st, pd)
	ow, _ := ConvOutSize(w, kw, st, pd)
	cols := New(c*kh*kw, n*oh*ow)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Im2ColBatchInto(x, cols, kh, kw, st, pd); err != nil {
			b.Fatal(err)
		}
	}
}
