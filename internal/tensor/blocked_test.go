package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// matMulRef is the naive i-p-j reference product. MatMulInto promises
// per-element accumulation order identical to this loop, so the blocked
// kernel must match it bit for bit.
func matMulRef(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		crow := c.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := a.data[i*k+p]
			brow := b.data[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

func matMulTransARef(a, b *Tensor) *Tensor {
	k, m, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		crow := c.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := a.data[p*m+i]
			brow := b.data[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

func matMulTransBRef(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(0)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.data[i*k+p] * b.data[j*k+p]
			}
			c.data[i*n+j] = s
		}
	}
	return c
}

// fillNaN poisons a tensor so the test catches any element the kernel
// under test fails to overwrite.
func fillNaN(t *Tensor) {
	for i := range t.data {
		t.data[i] = math.NaN()
	}
}

func requireBitEqual(t *testing.T, got, want *Tensor, label string) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v, want %v", label, got.Shape(), want.Shape())
	}
	for i := range want.data {
		if math.Float64bits(got.data[i]) != math.Float64bits(want.data[i]) {
			t.Fatalf("%s: element %d = %v, want %v (bitwise)", label, i, got.data[i], want.data[i])
		}
	}
}

func requireClose(t *testing.T, got, want *Tensor, relTol float64, label string) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v, want %v", label, got.Shape(), want.Shape())
	}
	for i := range want.data {
		diff := math.Abs(got.data[i] - want.data[i])
		scale := math.Abs(want.data[i])
		if scale < 1 {
			scale = 1
		}
		if diff > relTol*scale || math.IsNaN(got.data[i]) {
			t.Fatalf("%s: element %d = %v, want %v (|Δ|=%g)", label, i, got.data[i], want.data[i], diff)
		}
	}
}

// gemmSizes exercises the kernel edge cases: tiny products, odd row counts
// that leave a remainder after 2-row pairing, dimensions straddling the
// gemmBlockK boundary, and the short-and-wide shape conv layers produce.
var gemmSizes = []struct{ m, k, n int }{
	{1, 1, 1},
	{3, 5, 7},
	{17, 33, 9},
	{64, 64, 64},
	{5, 129, 300},
	{130, 257, 63},
}

func TestMatMulIntoMatchesNaive(t *testing.T) {
	for _, sz := range gemmSizes {
		rng := rand.New(rand.NewSource(7))
		a := Randn(rng, 0, 1, sz.m, sz.k)
		b := Randn(rng, 0, 1, sz.k, sz.n)
		want := matMulRef(a, b)
		for _, workers := range []int{1, 8} {
			old := SetMaxWorkers(workers)
			dst := New(sz.m, sz.n)
			fillNaN(dst)
			if err := MatMulInto(a, b, dst); err != nil {
				SetMaxWorkers(old)
				t.Fatal(err)
			}
			SetMaxWorkers(old)
			requireBitEqual(t, dst, want, fmt.Sprintf("MatMulInto %dx%dx%d workers=%d", sz.m, sz.k, sz.n, workers))
		}
	}
}

func TestMatMulTransAIntoMatchesNaive(t *testing.T) {
	for _, sz := range gemmSizes {
		rng := rand.New(rand.NewSource(8))
		a := Randn(rng, 0, 1, sz.k, sz.m)
		b := Randn(rng, 0, 1, sz.k, sz.n)
		want := matMulTransARef(a, b)
		for _, workers := range []int{1, 8} {
			old := SetMaxWorkers(workers)
			dst := New(sz.m, sz.n)
			fillNaN(dst)
			if err := MatMulTransAInto(a, b, dst); err != nil {
				SetMaxWorkers(old)
				t.Fatal(err)
			}
			SetMaxWorkers(old)
			requireBitEqual(t, dst, want, fmt.Sprintf("MatMulTransAInto %dx%dx%d workers=%d", sz.m, sz.k, sz.n, workers))
		}
	}
}

func TestMatMulTransBIntoMatchesNaive(t *testing.T) {
	// Include k > transBBlockK so the k-blocked partial sums are exercised;
	// re-association there permits a tiny tolerance.
	sizes := append(append([]struct{ m, k, n int }{}, gemmSizes...), struct{ m, k, n int }{6, 1500, 11})
	for _, sz := range sizes {
		rng := rand.New(rand.NewSource(9))
		a := Randn(rng, 0, 1, sz.m, sz.k)
		b := Randn(rng, 0, 1, sz.n, sz.k)
		want := matMulTransBRef(a, b)
		for _, workers := range []int{1, 8} {
			old := SetMaxWorkers(workers)
			dst := New(sz.m, sz.n)
			fillNaN(dst)
			if err := MatMulTransBInto(a, b, dst); err != nil {
				SetMaxWorkers(old)
				t.Fatal(err)
			}
			SetMaxWorkers(old)
			requireClose(t, dst, want, 1e-12, fmt.Sprintf("MatMulTransBInto %dx%dx%d workers=%d", sz.m, sz.k, sz.n, workers))
		}
	}
}

// forcePacked routes every product through the packed BLIS-style path
// for the duration of the test, regardless of size.
func forcePacked(t *testing.T) {
	t.Helper()
	old := packedMinOps
	packedMinOps = 1
	t.Cleanup(func() { packedMinOps = old })
}

// TestPackedMatchesNaive re-runs the equivalence matrix with the packed
// path forced for every size, for all three variants. The packed kernels
// keep the naive accumulation order per element, so all three — including
// A·Bᵀ, whose classic fallback only matches to 1e-12 — must be bitwise.
func TestPackedMatchesNaive(t *testing.T) {
	forcePacked(t)
	sizes := append(append([]struct{ m, k, n int }{}, gemmSizes...), struct{ m, k, n int }{6, 1500, 11})
	for _, sz := range sizes {
		rng := rand.New(rand.NewSource(13))
		a := Randn(rng, 0, 1, sz.m, sz.k)
		b := Randn(rng, 0, 1, sz.k, sz.n)
		at := New(sz.k, sz.m)
		bt := New(sz.n, sz.k)
		for i := 0; i < sz.m; i++ {
			for p := 0; p < sz.k; p++ {
				at.data[p*sz.m+i] = a.data[i*sz.k+p]
			}
		}
		for p := 0; p < sz.k; p++ {
			for j := 0; j < sz.n; j++ {
				bt.data[j*sz.k+p] = b.data[p*sz.n+j]
			}
		}
		want := matMulRef(a, b)
		for _, workers := range []int{1, 8} {
			old := SetMaxWorkers(workers)
			for _, v := range []struct {
				name string
				run  func(dst *Tensor) error
			}{
				{"MatMulInto", func(dst *Tensor) error { return MatMulInto(a, b, dst) }},
				{"MatMulTransAInto", func(dst *Tensor) error { return MatMulTransAInto(at, b, dst) }},
				{"MatMulTransBInto", func(dst *Tensor) error { return MatMulTransBInto(a, bt, dst) }},
			} {
				dst := New(sz.m, sz.n)
				fillNaN(dst)
				if err := v.run(dst); err != nil {
					SetMaxWorkers(old)
					t.Fatal(err)
				}
				requireBitEqual(t, dst, want, fmt.Sprintf("packed %s %dx%dx%d workers=%d", v.name, sz.m, sz.k, sz.n, workers))
			}
			SetMaxWorkers(old)
		}
	}
}

// TestMatMulIntoWorkerInvariance pins the bitwise-reproducibility claim
// directly: the same product under 1 and 8 workers is identical.
func TestMatMulIntoWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := Randn(rng, 0, 1, 97, 143)
	b := Randn(rng, 0, 1, 143, 301)
	run := func(workers int) *Tensor {
		old := SetMaxWorkers(workers)
		defer SetMaxWorkers(old)
		dst := New(97, 301)
		fillNaN(dst)
		if err := MatMulInto(a, b, dst); err != nil {
			t.Fatal(err)
		}
		return dst
	}
	requireBitEqual(t, run(8), run(1), "MatMulInto workers=8 vs workers=1")
}

func TestIm2ColBatchIntoMatchesReference(t *testing.T) {
	cases := []struct{ n, c, h, w, kh, kw, stride, pad int }{
		{1, 1, 4, 4, 3, 3, 1, 1},
		{3, 2, 7, 5, 3, 3, 2, 1},
		{5, 4, 9, 9, 5, 5, 1, 2},
		{4, 3, 8, 8, 2, 2, 2, 0},
	}
	for _, tc := range cases {
		rng := rand.New(rand.NewSource(11))
		x := Randn(rng, 0, 1, tc.n, tc.c, tc.h, tc.w)
		oh, err := ConvOutSize(tc.h, tc.kh, tc.stride, tc.pad)
		if err != nil {
			t.Fatal(err)
		}
		ow, err := ConvOutSize(tc.w, tc.kw, tc.stride, tc.pad)
		if err != nil {
			t.Fatal(err)
		}
		ckk, spat := tc.c*tc.kh*tc.kw, oh*ow
		sampleLen := tc.c * tc.h * tc.w

		// Reference: per-sample Im2Col copied into the strided batch layout.
		want := New(ckk, tc.n*spat)
		for s := 0; s < tc.n; s++ {
			sub := MustFromSlice(x.Data()[s*sampleLen:(s+1)*sampleLen], tc.c, tc.h, tc.w)
			sc, err := Im2Col(sub, tc.kh, tc.kw, tc.stride, tc.pad)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < ckk; r++ {
				copy(want.data[r*tc.n*spat+s*spat:r*tc.n*spat+(s+1)*spat], sc.data[r*spat:(r+1)*spat])
			}
		}

		for _, workers := range []int{1, 8} {
			old := SetMaxWorkers(workers)
			cols := New(ckk, tc.n*spat)
			fillNaN(cols)
			if err := Im2ColBatchInto(x, cols, tc.kh, tc.kw, tc.stride, tc.pad); err != nil {
				SetMaxWorkers(old)
				t.Fatal(err)
			}
			SetMaxWorkers(old)
			requireBitEqual(t, cols, want, fmt.Sprintf("Im2ColBatchInto %+v workers=%d", tc, workers))
		}
	}
}

func TestCol2ImBatchFromMatchesReference(t *testing.T) {
	cases := []struct{ n, c, h, w, kh, kw, stride, pad int }{
		{1, 1, 4, 4, 3, 3, 1, 1},
		{3, 2, 7, 5, 3, 3, 2, 1},
		{4, 3, 8, 8, 2, 2, 2, 0},
	}
	for _, tc := range cases {
		oh, err := ConvOutSize(tc.h, tc.kh, tc.stride, tc.pad)
		if err != nil {
			t.Fatal(err)
		}
		ow, err := ConvOutSize(tc.w, tc.kw, tc.stride, tc.pad)
		if err != nil {
			t.Fatal(err)
		}
		ckk, spat := tc.c*tc.kh*tc.kw, oh*ow
		rng := rand.New(rand.NewSource(12))
		cols := Randn(rng, 0, 1, ckk, tc.n*spat)
		sampleLen := tc.c * tc.h * tc.w

		// Reference: per-sample Col2Im of each strided slot.
		want := New(tc.n, tc.c, tc.h, tc.w)
		for s := 0; s < tc.n; s++ {
			sub := New(ckk, spat)
			for r := 0; r < ckk; r++ {
				copy(sub.data[r*spat:(r+1)*spat], cols.data[r*tc.n*spat+s*spat:r*tc.n*spat+(s+1)*spat])
			}
			img, err := Col2Im(sub, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad)
			if err != nil {
				t.Fatal(err)
			}
			copy(want.data[s*sampleLen:(s+1)*sampleLen], img.data)
		}

		for _, workers := range []int{1, 8} {
			old := SetMaxWorkers(workers)
			dst := New(tc.n, tc.c, tc.h, tc.w)
			fillNaN(dst)
			if err := Col2ImBatchFrom(cols, dst, tc.kh, tc.kw, tc.stride, tc.pad); err != nil {
				SetMaxWorkers(old)
				t.Fatal(err)
			}
			SetMaxWorkers(old)
			requireBitEqual(t, dst, want, fmt.Sprintf("Col2ImBatchFrom %+v workers=%d", tc, workers))
		}
	}
}

func TestWorkspaceGetPut(t *testing.T) {
	w := NewWorkspace()
	a := w.Get(3, 5)
	if a.Dim(0) != 3 || a.Dim(1) != 5 || a.Len() != 15 {
		t.Fatalf("Get(3,5) shape %v len %d", a.Shape(), a.Len())
	}
	if cap(a.data) < 15 {
		t.Fatalf("Get(3,5) cap %d < 15", cap(a.data))
	}
	w.Put(a)
	if a.data != nil || a.shape != nil {
		t.Fatalf("Put did not detach storage: data=%v shape=%v", a.data, a.shape)
	}
	w.Put(nil) // must not panic

	z := w.GetZeroed(4, 4)
	for i, v := range z.data {
		if v != 0 {
			t.Fatalf("GetZeroed element %d = %v", i, v)
		}
	}
}

func TestWorkspaceObtainReusesInPlace(t *testing.T) {
	w := NewWorkspace()
	a := w.Get(8, 8)
	backing := &a.data[0]
	// Same element count, different shape: must reuse in place.
	b := w.Obtain(a, 4, 16)
	if b != a || &b.data[0] != backing {
		t.Fatal("Obtain with fitting capacity did not reuse storage in place")
	}
	if b.Dim(0) != 4 || b.Dim(1) != 16 {
		t.Fatalf("Obtain reshaped to %v, want [4 16]", b.Shape())
	}
	// Smaller: still in place.
	c := w.Obtain(b, 2, 3)
	if c != b || c.Len() != 6 {
		t.Fatalf("Obtain shrink: reused=%v len=%d", c == b, c.Len())
	}
	// Larger than capacity: old storage is recycled, new buffer returned.
	d := w.Obtain(c, 1024)
	if d.Len() != 1024 || cap(d.data) < 1024 {
		t.Fatalf("Obtain grow: len=%d cap=%d", d.Len(), cap(d.data))
	}
	// Obtain(nil) behaves like Get.
	e := w.Obtain(nil, 2, 2)
	if e.Len() != 4 {
		t.Fatalf("Obtain(nil) len %d", e.Len())
	}
}

func TestWorkspaceSizeClasses(t *testing.T) {
	for _, tc := range []struct{ n, class int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	} {
		if got := sizeClassCeil(tc.n); got != tc.class {
			t.Errorf("sizeClassCeil(%d) = %d, want %d", tc.n, got, tc.class)
		}
	}
	for _, tc := range []struct{ c, class int }{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {1024, 10}, {1536, 10},
	} {
		if got := sizeClassFloor(tc.c); got != tc.class {
			t.Errorf("sizeClassFloor(%d) = %d, want %d", tc.c, got, tc.class)
		}
	}
	// The invariant that makes Put→Get safe: a buffer Put into its floor
	// class always satisfies any request whose ceil class maps there.
	w := NewWorkspace()
	t1 := w.Get(100) // class ceil(log2 100) = 7, cap 128
	w.Put(t1)
	t2 := w.Get(128) // also class 7; pooled buffer must fit
	if t2.Len() != 128 {
		t.Fatalf("pooled reuse: len %d", t2.Len())
	}
}
