package tensor

import "fmt"

// ConvOutSize returns the spatial output size of a convolution over an
// input of size in with the given kernel size, stride, and symmetric
// padding. It returns an error when the geometry is invalid.
func ConvOutSize(in, kernel, stride, pad int) (int, error) {
	if stride <= 0 {
		return 0, fmt.Errorf("tensor: stride must be positive, got %d", stride)
	}
	if kernel <= 0 {
		return 0, fmt.Errorf("tensor: kernel must be positive, got %d", kernel)
	}
	if pad < 0 {
		return 0, fmt.Errorf("tensor: pad must be non-negative, got %d", pad)
	}
	out := (in+2*pad-kernel)/stride + 1
	if out <= 0 {
		return 0, fmt.Errorf("tensor: convolution output size %d for in=%d kernel=%d stride=%d pad=%d", out, in, kernel, stride, pad)
	}
	return out, nil
}

// Im2Col unrolls a single image x with shape (C, H, W) into a matrix of
// shape (C·kh·kw, oh·ow) so that convolution becomes a matrix product of
// the (F, C·kh·kw) filter matrix with the column matrix. Out-of-bounds
// (padded) positions contribute zeros.
func Im2Col(x *Tensor, kh, kw, stride, pad int) (*Tensor, error) {
	if x.Rank() != 3 {
		return nil, fmt.Errorf("tensor: Im2Col requires rank-3 input (C,H,W), got %v", x.shape)
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oh, err := ConvOutSize(h, kh, stride, pad)
	if err != nil {
		return nil, err
	}
	ow, err := ConvOutSize(w, kw, stride, pad)
	if err != nil {
		return nil, err
	}
	cols := New(c*kh*kw, oh*ow)
	im2colStrided(x.data, cols.data, 0, oh*ow, c, h, w, kh, kw, stride, pad, oh, ow)
	return cols, nil
}

// Im2ColBatchInto unrolls every sample of an NCHW batch x (N, C, H, W)
// directly into cols, a (C·kh·kw, N·oh·ow) matrix in which sample i's
// columns occupy the strided slot [i·oh·ow, (i+1)·oh·ow) of every row —
// the exact layout the batched convolution GEMM consumes. Every element of
// cols is overwritten (padded positions with zeros), so cols may come from
// a workspace uninitialised. Samples are unrolled in parallel on the
// shared worker pool, bounded by SetMaxWorkers.
func Im2ColBatchInto(x, cols *Tensor, kh, kw, stride, pad int) error {
	if x.Rank() != 4 {
		return fmt.Errorf("tensor: Im2ColBatchInto requires rank-4 input (N,C,H,W), got %v", x.shape)
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	oh, err := ConvOutSize(h, kh, stride, pad)
	if err != nil {
		return err
	}
	ow, err := ConvOutSize(w, kw, stride, pad)
	if err != nil {
		return err
	}
	spat := oh * ow
	if cols.Rank() != 2 || cols.shape[0] != c*kh*kw || cols.shape[1] != n*spat {
		return fmt.Errorf("tensor: Im2ColBatchInto expects cols of shape (%d,%d), got %v", c*kh*kw, n*spat, cols.shape)
	}
	sampleLen := c * h * w
	rowStride := n * spat
	parallelRange(n, 2, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			im2colStrided(x.data[i*sampleLen:(i+1)*sampleLen], cols.data, i*spat, rowStride, c, h, w, kh, kw, stride, pad, oh, ow)
		}
	})
	return nil
}

// im2colStrided writes one sample's column matrix into cols, where row r
// of the logical (C·kh·kw, oh·ow) matrix lives at offset r·rowStride+off.
// With off=0 and rowStride=oh·ow this is the dense single-sample layout;
// Im2ColBatchInto passes the batched stride so no intermediate copy is
// needed.
func im2colStrided(x, cols []float64, off, rowStride, c, h, w, kh, kw, stride, pad, oh, ow int) {
	ncols := oh * ow
	for ch := 0; ch < c; ch++ {
		img := x[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				r := (ch*kh+ky)*kw + kx
				row := cols[r*rowStride+off : r*rowStride+off+ncols]
				idx := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							row[idx] = 0
							idx++
						}
						continue
					}
					base := iy * w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							row[idx] = 0
						} else {
							row[idx] = img[base+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// Col2Im scatters a column matrix produced by Im2Col back into an image of
// shape (C, H, W), accumulating overlapping contributions. It is the adjoint
// of Im2Col and is used in the convolution backward pass.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) (*Tensor, error) {
	oh, err := ConvOutSize(h, kh, stride, pad)
	if err != nil {
		return nil, err
	}
	ow, err := ConvOutSize(w, kw, stride, pad)
	if err != nil {
		return nil, err
	}
	if cols.Rank() != 2 || cols.shape[0] != c*kh*kw || cols.shape[1] != oh*ow {
		return nil, fmt.Errorf("tensor: Col2Im expects cols of shape (%d,%d), got %v", c*kh*kw, oh*ow, cols.shape)
	}
	img := New(c, h, w)
	col2imStrided(cols.data, img.data, 0, oh*ow, c, h, w, kh, kw, stride, pad, oh, ow)
	return img, nil
}

// Col2ImBatchFrom is the adjoint of Im2ColBatchInto: it gathers every
// sample's columns from their strided slots of cols (C·kh·kw, N·oh·ow) and
// scatter-accumulates them into dst (N, C, H, W), which is zeroed first.
// Samples write disjoint regions of dst, so they run in parallel on the
// shared worker pool.
func Col2ImBatchFrom(cols, dst *Tensor, kh, kw, stride, pad int) error {
	if dst.Rank() != 4 {
		return fmt.Errorf("tensor: Col2ImBatchFrom requires rank-4 dst (N,C,H,W), got %v", dst.shape)
	}
	n, c, h, w := dst.shape[0], dst.shape[1], dst.shape[2], dst.shape[3]
	oh, err := ConvOutSize(h, kh, stride, pad)
	if err != nil {
		return err
	}
	ow, err := ConvOutSize(w, kw, stride, pad)
	if err != nil {
		return err
	}
	spat := oh * ow
	if cols.Rank() != 2 || cols.shape[0] != c*kh*kw || cols.shape[1] != n*spat {
		return fmt.Errorf("tensor: Col2ImBatchFrom expects cols of shape (%d,%d), got %v", c*kh*kw, n*spat, cols.shape)
	}
	sampleLen := c * h * w
	rowStride := n * spat
	parallelRange(n, 2, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out := dst.data[i*sampleLen : (i+1)*sampleLen]
			for j := range out {
				out[j] = 0
			}
			col2imStrided(cols.data, out, i*spat, rowStride, c, h, w, kh, kw, stride, pad, oh, ow)
		}
	})
	return nil
}

// col2imStrided scatter-accumulates one sample's columns (row r of the
// logical matrix at offset r·rowStride+off) into the (C, H, W) image img,
// which the caller has zeroed.
func col2imStrided(cols, img []float64, off, rowStride, c, h, w, kh, kw, stride, pad, oh, ow int) {
	ncols := oh * ow
	for ch := 0; ch < c; ch++ {
		out := img[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				r := (ch*kh+ky)*kw + kx
				row := cols[r*rowStride+off : r*rowStride+off+ncols]
				idx := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						idx += ow
						continue
					}
					base := iy * w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							out[base+ix] += row[idx]
						}
						idx++
					}
				}
			}
		}
	}
}
