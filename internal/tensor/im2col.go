package tensor

import "fmt"

// ConvOutSize returns the spatial output size of a convolution over an
// input of size in with the given kernel size, stride, and symmetric
// padding. It returns an error when the geometry is invalid.
func ConvOutSize(in, kernel, stride, pad int) (int, error) {
	if stride <= 0 {
		return 0, fmt.Errorf("tensor: stride must be positive, got %d", stride)
	}
	if kernel <= 0 {
		return 0, fmt.Errorf("tensor: kernel must be positive, got %d", kernel)
	}
	if pad < 0 {
		return 0, fmt.Errorf("tensor: pad must be non-negative, got %d", pad)
	}
	out := (in+2*pad-kernel)/stride + 1
	if out <= 0 {
		return 0, fmt.Errorf("tensor: convolution output size %d for in=%d kernel=%d stride=%d pad=%d", out, in, kernel, stride, pad)
	}
	return out, nil
}

// Im2Col unrolls a single image x with shape (C, H, W) into a matrix of
// shape (C·kh·kw, oh·ow) so that convolution becomes a matrix product of
// the (F, C·kh·kw) filter matrix with the column matrix. Out-of-bounds
// (padded) positions contribute zeros.
func Im2Col(x *Tensor, kh, kw, stride, pad int) (*Tensor, error) {
	if x.Rank() != 3 {
		return nil, fmt.Errorf("tensor: Im2Col requires rank-3 input (C,H,W), got %v", x.shape)
	}
	c, h, w := x.shape[0], x.shape[1], x.shape[2]
	oh, err := ConvOutSize(h, kh, stride, pad)
	if err != nil {
		return nil, err
	}
	ow, err := ConvOutSize(w, kw, stride, pad)
	if err != nil {
		return nil, err
	}
	cols := New(c*kh*kw, oh*ow)
	im2colInto(x.data, cols.data, c, h, w, kh, kw, stride, pad, oh, ow)
	return cols, nil
}

func im2colInto(x, cols []float64, c, h, w, kh, kw, stride, pad, oh, ow int) {
	ncols := oh * ow
	for ch := 0; ch < c; ch++ {
		img := x[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := cols[((ch*kh+ky)*kw+kx)*ncols : ((ch*kh+ky)*kw+kx+1)*ncols]
				idx := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							row[idx] = 0
							idx++
						}
						continue
					}
					base := iy * w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							row[idx] = 0
						} else {
							row[idx] = img[base+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// Col2Im scatters a column matrix produced by Im2Col back into an image of
// shape (C, H, W), accumulating overlapping contributions. It is the adjoint
// of Im2Col and is used in the convolution backward pass.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) (*Tensor, error) {
	oh, err := ConvOutSize(h, kh, stride, pad)
	if err != nil {
		return nil, err
	}
	ow, err := ConvOutSize(w, kw, stride, pad)
	if err != nil {
		return nil, err
	}
	if cols.Rank() != 2 || cols.shape[0] != c*kh*kw || cols.shape[1] != oh*ow {
		return nil, fmt.Errorf("tensor: Col2Im expects cols of shape (%d,%d), got %v", c*kh*kw, oh*ow, cols.shape)
	}
	img := New(c, h, w)
	ncols := oh * ow
	for ch := 0; ch < c; ch++ {
		out := img.data[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				row := cols.data[((ch*kh+ky)*kw+kx)*ncols : ((ch*kh+ky)*kw+kx+1)*ncols]
				idx := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						idx += ow
						continue
					}
					base := iy * w
					for ox := 0; ox < ow; ox++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							out[base+ix] += row[idx]
						}
						idx++
					}
				}
			}
		}
	}
	return img, nil
}
