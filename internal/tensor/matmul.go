package tensor

import "fmt"

// MatMul computes the matrix product a·b for rank-2 tensors, parallelising
// over rows of a. Shapes must be (m×k)·(k×n); the result is m×n.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMul requires rank-2 tensors, got %v and %v", a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMul inner dimension mismatch %v vs %v", a.shape, b.shape)
	}
	out := New(m, n)
	matmulInto(a.data, b.data, out.data, m, k, n)
	return out, nil
}

// MustMatMul is MatMul but panics on error.
func MustMatMul(a, b *Tensor) *Tensor {
	t, err := MatMul(a, b)
	if err != nil {
		panic(err)
	}
	return t
}

// MatMulTransA computes aᵀ·b where a is (k×m) and b is (k×n), yielding m×n.
// It avoids materialising the transpose.
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMulTransA requires rank-2 tensors, got %v and %v", a.shape, b.shape)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMulTransA inner dimension mismatch %v vs %v", a.shape, b.shape)
	}
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := od[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := ad[p*m+i]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					row[j] += av * bv
				}
			}
		}
	})
	return out, nil
}

// MatMulTransB computes a·bᵀ where a is (m×k) and b is (n×k), yielding m×n.
// It avoids materialising the transpose.
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMulTransB requires rank-2 tensors, got %v and %v", a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMulTransB inner dimension mismatch %v vs %v", a.shape, b.shape)
	}
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			orow := od[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				s := 0.0
				for p, av := range arow {
					s += av * brow[p]
				}
				orow[j] = s
			}
		}
	})
	return out, nil
}

// matmulInto computes c = a·b with a (m×k), b (k×n), c (m×n) pre-zeroed,
// parallelised over row blocks of a. The inner loop is ordered i-p-j so b
// is streamed row-wise (cache friendly) and the compiler can keep c's row
// hot.
func matmulInto(a, b, c []float64, m, k, n int) {
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := c[i*n : (i+1)*n]
			arow := a[i*k : (i+1)*k]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
}

// Transpose2D returns the transpose of a rank-2 tensor.
func Transpose2D(a *Tensor) (*Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("tensor: Transpose2D requires rank 2, got %v", a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out, nil
}

// MatVec computes the matrix-vector product a·x for a (m×n) and x (n),
// yielding a length-m vector.
func MatVec(a, x *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || x.Rank() != 1 {
		return nil, fmt.Errorf("tensor: MatVec requires (2,1) ranks, got %v and %v", a.shape, x.shape)
	}
	m, n := a.shape[0], a.shape[1]
	if x.shape[0] != n {
		return nil, fmt.Errorf("tensor: MatVec dimension mismatch %v vs %v", a.shape, x.shape)
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * x.data[j]
		}
		out.data[i] = s
	}
	return out, nil
}
