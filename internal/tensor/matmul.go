package tensor

import "fmt"

// Cache-blocking parameters for the GEMM kernels, sized for typical
// x86-64 cache hierarchies with float64 elements:
//
//   - a gemmBlockK-row panel of B revisited by every row pair of A spans
//     128·n·8 B — for the matrix widths the conv/dense layers produce it
//     stays L2-resident across the whole sweep over A;
//   - the two C rows a register-tiled row pair updates stream alongside
//     exactly one B row, keeping the inner loop at three active memory
//     streams (measured faster here than a four-row tile, which adds two
//     more store streams per loop and stalls the store ports).
//
// The micro-kernel unrolls two rows of A so each loaded element of B is
// reused twice from registers, halving the dominant memory traffic of
// the naive i-p-j loop.
const (
	gemmBlockK = 128
	// gemmBlockN is the column-panel width used when parallelising short,
	// very wide products (conv layers) across workers.
	gemmBlockN = 256
	// transBBlockK bounds the dot-product segments of the a·bᵀ kernel so
	// one A segment plus four B segments stay in L1.
	transBBlockK = 1024
)

// MatMulInto computes dst = a·b for rank-2 tensors with a (m×k), b (k×n),
// dst (m×n), overwriting dst, with cache-blocked, register-tiled inner
// loops. dst must not alias a or b. Per-element accumulation order matches
// the naive i-p-j loop, so results are bitwise identical to the reference
// under any worker count. Products above packedMinOps flops dispatch to
// the BLIS-style packed path (pack.go); smaller ones keep the classic
// blocked kernels below.
func MatMulInto(a, b, dst *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		return fmt.Errorf("tensor: MatMulInto requires rank-2 tensors, got %v, %v, %v", a.shape, b.shape, dst.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return fmt.Errorf("tensor: MatMulInto inner dimension mismatch %v vs %v", a.shape, b.shape)
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.shape, m, n)
	}
	dst.Zero()
	countMatMul(m, n, k)
	if usePacked(m, k, n) {
		countMatMulPacked()
		packedGemm(a.data, b.data, dst.data, m, k, n, false, false)
		return nil
	}
	gemmParallel(m, n, func(i0, i1, j0, j1 int) {
		gemmPanel(a.data, b.data, dst.data, k, n, i0, i1, j0, j1)
	})
	return nil
}

// MatMulTransAInto computes dst = aᵀ·b with a (k×m), b (k×n), dst (m×n),
// overwriting dst, without materialising the transpose. dst must not alias
// a or b. Results are bitwise identical to the naive reference; large
// products take the packed path like MatMulInto.
func MatMulTransAInto(a, b, dst *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		return fmt.Errorf("tensor: MatMulTransAInto requires rank-2 tensors, got %v, %v, %v", a.shape, b.shape, dst.shape)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return fmt.Errorf("tensor: MatMulTransAInto inner dimension mismatch %v vs %v", a.shape, b.shape)
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("tensor: MatMulTransAInto dst shape %v, want [%d %d]", dst.shape, m, n)
	}
	dst.Zero()
	countMatMul(m, n, k)
	if usePacked(m, k, n) {
		countMatMulPacked()
		packedGemm(a.data, b.data, dst.data, m, k, n, true, false)
		return nil
	}
	gemmParallel(m, n, func(i0, i1, j0, j1 int) {
		gemmTransAPanel(a.data, b.data, dst.data, k, m, n, i0, i1, j0, j1)
	})
	return nil
}

// MatMulTransBInto computes dst = a·bᵀ with a (m×k), b (n×k), dst (m×n),
// overwriting dst, without materialising the transpose. dst must not alias
// a or b. Large products take the packed path, which keeps the naive
// per-element accumulation order and is therefore bitwise identical to
// the reference; the small-matrix fallback blocks the k dimension, where
// accumulation order differs from the naive single-accumulator dot
// product by at most the usual float64 re-association error (≪ 1e-12
// relative).
func MatMulTransBInto(a, b, dst *Tensor) error {
	if a.Rank() != 2 || b.Rank() != 2 || dst.Rank() != 2 {
		return fmt.Errorf("tensor: MatMulTransBInto requires rank-2 tensors, got %v, %v, %v", a.shape, b.shape, dst.shape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		return fmt.Errorf("tensor: MatMulTransBInto inner dimension mismatch %v vs %v", a.shape, b.shape)
	}
	if dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("tensor: MatMulTransBInto dst shape %v, want [%d %d]", dst.shape, m, n)
	}
	dst.Zero()
	countMatMul(m, n, k)
	if usePacked(m, k, n) {
		countMatMulPacked()
		packedGemm(a.data, b.data, dst.data, m, k, n, false, true)
		return nil
	}
	gemmParallel(m, n, func(i0, i1, j0, j1 int) {
		gemmTransBPanel(a.data, b.data, dst.data, k, n, i0, i1, j0, j1)
	})
	return nil
}

// gemmParallel splits the m×n output across the worker pool: over row
// chunks when there are enough rows to feed every worker a register-tiled
// group, otherwise over column panels (the conv layers produce short, very
// wide products — a handful of filter rows times N·OH·OW columns).
func gemmParallel(m, n int, panel func(i0, i1, j0, j1 int)) {
	if m >= 4*maxWorkers || n <= gemmBlockN {
		parallelRange(m, 8, func(lo, hi int) { panel(lo, hi, 0, n) })
		return
	}
	nb := (n + gemmBlockN - 1) / gemmBlockN
	parallelRange(nb, 2, func(lo, hi int) {
		j1 := hi * gemmBlockN
		if j1 > n {
			j1 = n
		}
		panel(0, m, lo*gemmBlockN, j1)
	})
}

// gemmPanel accumulates C[i0:i1, j0:j1] += A[i0:i1, :]·B[:, j0:j1] over
// pre-zeroed C, with k blocked and two rows register-tiled. Hoisting the
// A-row segments as slices lets the compiler keep the pp index
// bounds-check free in the hot loop.
func gemmPanel(a, b, c []float64, k, n, i0, i1, j0, j1 int) {
	for p0 := 0; p0 < k; p0 += gemmBlockK {
		p1 := p0 + gemmBlockK
		if p1 > k {
			p1 = k
		}
		i := i0
		for ; i+2 <= i1; i += 2 {
			c0 := c[(i+0)*n+j0 : (i+0)*n+j1]
			c1 := c[(i+1)*n+j0 : (i+1)*n+j1]
			a0 := a[(i+0)*k+p0 : (i+0)*k+p1]
			a1 := a[(i+1)*k+p0 : (i+1)*k+p1]
			for pp := range a0 {
				v0, v1 := a0[pp], a1[pp]
				if v0 == 0 && v1 == 0 {
					continue
				}
				brow := b[(p0+pp)*n+j0 : (p0+pp)*n+j1]
				for j, bv := range brow {
					c0[j] += v0 * bv
					c1[j] += v1 * bv
				}
			}
		}
		for ; i < i1; i++ {
			crow := c[i*n+j0 : i*n+j1]
			for p := p0; p < p1; p++ {
				av := a[i*k+p]
				if av == 0 {
					continue
				}
				brow := b[p*n+j0 : p*n+j1]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// gemmTransAPanel accumulates C[i0:i1, j0:j1] += Aᵀ[i0:i1, :]·B[:, j0:j1]
// with a stored (k×m); the paired row loads a[p·m+i], a[p·m+i+1] are
// adjacent in memory.
func gemmTransAPanel(a, b, c []float64, k, m, n, i0, i1, j0, j1 int) {
	for p0 := 0; p0 < k; p0 += gemmBlockK {
		p1 := p0 + gemmBlockK
		if p1 > k {
			p1 = k
		}
		i := i0
		for ; i+2 <= i1; i += 2 {
			c0 := c[(i+0)*n+j0 : (i+0)*n+j1]
			c1 := c[(i+1)*n+j0 : (i+1)*n+j1]
			for p := p0; p < p1; p++ {
				off := p*m + i
				v0, v1 := a[off], a[off+1]
				if v0 == 0 && v1 == 0 {
					continue
				}
				brow := b[p*n+j0 : p*n+j1]
				for j, bv := range brow {
					c0[j] += v0 * bv
					c1[j] += v1 * bv
				}
			}
		}
		for ; i < i1; i++ {
			crow := c[i*n+j0 : i*n+j1]
			for p := p0; p < p1; p++ {
				av := a[p*m+i]
				if av == 0 {
					continue
				}
				brow := b[p*n+j0 : p*n+j1]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// gemmTransBPanel accumulates C[i0:i1, j0:j1] += A[i0:i1, :]·Bᵀ[:, j0:j1]
// with b stored (n×k): both operands stream contiguously, four dot
// products share each loaded element of A.
func gemmTransBPanel(a, b, c []float64, k, n, i0, i1, j0, j1 int) {
	for p0 := 0; p0 < k; p0 += transBBlockK {
		p1 := p0 + transBBlockK
		if p1 > k {
			p1 = k
		}
		for i := i0; i < i1; i++ {
			arow := a[i*k+p0 : i*k+p1]
			crow := c[i*n : (i+1)*n]
			j := j0
			for ; j+4 <= j1; j += 4 {
				b0 := b[(j+0)*k+p0 : (j+0)*k+p1]
				b1 := b[(j+1)*k+p0 : (j+1)*k+p1]
				b2 := b[(j+2)*k+p0 : (j+2)*k+p1]
				b3 := b[(j+3)*k+p0 : (j+3)*k+p1]
				var s0, s1, s2, s3 float64
				for p, av := range arow {
					s0 += av * b0[p]
					s1 += av * b1[p]
					s2 += av * b2[p]
					s3 += av * b3[p]
				}
				crow[j+0] += s0
				crow[j+1] += s1
				crow[j+2] += s2
				crow[j+3] += s3
			}
			for ; j < j1; j++ {
				brow := b[j*k+p0 : j*k+p1]
				s := 0.0
				for p, av := range arow {
					s += av * brow[p]
				}
				crow[j] += s
			}
		}
	}
}

// MatMul computes the matrix product a·b for rank-2 tensors in a fresh
// tensor. Shapes must be (m×k)·(k×n); the result is m×n.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMul requires rank-2 tensors, got %v and %v", a.shape, b.shape)
	}
	out := New(a.shape[0], b.shape[1])
	if err := MatMulInto(a, b, out); err != nil {
		return nil, err
	}
	return out, nil
}

// MustMatMul is MatMul but panics on error.
func MustMatMul(a, b *Tensor) *Tensor {
	t, err := MatMul(a, b)
	if err != nil {
		panic(err)
	}
	return t
}

// MatMulTransA computes aᵀ·b where a is (k×m) and b is (k×n), yielding m×n
// in a fresh tensor.
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMulTransA requires rank-2 tensors, got %v and %v", a.shape, b.shape)
	}
	out := New(a.shape[1], b.shape[1])
	if err := MatMulTransAInto(a, b, out); err != nil {
		return nil, err
	}
	return out, nil
}

// MatMulTransB computes a·bᵀ where a is (m×k) and b is (n×k), yielding m×n
// in a fresh tensor.
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMulTransB requires rank-2 tensors, got %v and %v", a.shape, b.shape)
	}
	out := New(a.shape[0], b.shape[0])
	if err := MatMulTransBInto(a, b, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Transpose2D returns the transpose of a rank-2 tensor.
func Transpose2D(a *Tensor) (*Tensor, error) {
	if a.Rank() != 2 {
		return nil, fmt.Errorf("tensor: Transpose2D requires rank 2, got %v", a.shape)
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out, nil
}

// MatVec computes the matrix-vector product a·x for a (m×n) and x (n),
// yielding a length-m vector.
func MatVec(a, x *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || x.Rank() != 1 {
		return nil, fmt.Errorf("tensor: MatVec requires (2,1) ranks, got %v and %v", a.shape, x.shape)
	}
	m, n := a.shape[0], a.shape[1]
	if x.shape[0] != n {
		return nil, fmt.Errorf("tensor: MatVec dimension mismatch %v vs %v", a.shape, x.shape)
	}
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * x.data[j]
		}
		out.data[i] = s
	}
	return out, nil
}
