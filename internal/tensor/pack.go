package tensor

import "sync"

// BLIS-style packed GEMM. The classic blocked kernels in matmul.go keep
// GFLOP/s respectable up to a few hundred rows, but at 1024+ both
// operands fall out of cache and throughput collapses: every sweep of
// the 2-row micro-kernel re-streams a B panel whose rows are scattered
// across n·8-byte strides. The packed path fixes the memory system the
// way BLIS does — copy panels of A and B once into contiguous,
// micro-kernel-ordered buffers, then run a register-tiled micro-kernel
// over them inside an mc/kc/nc loop nest:
//
//	for jc in 0..n step packNC:        // B panel column block  (L3)
//	  for pc in 0..k step packKC:      // k block               (shared)
//	    pack B[pc:pc+kc, jc:jc+nc]     // → packNR-wide strips
//	    for ic in 0..m step packMC:    // A block               (L2)
//	      pack A[ic:ic+mc, pc:pc+kc]   // → packMR-tall strips
//	      for jr, ir over the block:   // 2×4 register tiles    (L1)
//	        kernel2x4(…)
//
// Reproducibility contract: every C element is accumulated strictly in
// ascending p order with one `acc += a*b` per term — the pc loop is
// outside ic/jr/ir, the micro-kernel starts each tile from the partial
// sum already in C, and zero-padded pack lanes are never stored — so
// the packed result is bitwise identical to the naive i-p-j loop for
// all three variants, under any worker count.
//
// Parallelism: the output is split into row (or, for the short-wide
// conv products, column) slabs, one per worker on the persistent pool
// in parallel.go. Each worker runs the full loop nest over its own slab
// with its own pack buffers, so slabs share nothing and the partition
// never touches k — each element still belongs to exactly one worker.
// The slab that owns rows re-packs the shared B panels itself; that
// redundancy is O(k·n) copies per worker against O(m·n·k/workers)
// flops, well under 1% at the sizes the packed path accepts.
const (
	// packMR×packNR is the register micro-tile. 2×4 keeps the working
	// set — 8 accumulators plus 6 operand temporaries — inside the 16
	// XMM registers; the classic 4×4 tile measured slower (3.4 vs 5.2
	// GFLOP/s raw kernel throughput on the reference machine) because
	// its 16 accumulators force the register allocator to spill every
	// accumulator to the stack on every k iteration, and the spill
	// traffic costs more than the extra operand reuse saves.
	packMR = 2
	packNR = 4
	// packKC rows of packed B per panel strip: one packKC×packNR strip
	// spans 8 KiB and stays L1-resident for every tile in the ic block.
	// Sweeping kc∈{256,512} on the reference box showed 256 marginally
	// ahead; both beat smaller blocks, which repack A too often.
	packKC = 256
	// packMC rows of packed A per block: a packMC×packKC block spans
	// 64 KiB, small enough to stay hot in L2 across the whole jr sweep
	// (mc∈{8..64} measured within noise of each other; 16–32 was best).
	packMC = 32
	// packNC columns of packed B per panel: a packKC×packNC panel spans
	// 2 MiB, sized for the outer-level cache.
	packNC = 1024
)

// packedMinOps is the flop count (2·m·n·k) above which the packed path
// replaces the classic blocked kernels: below it the pack copies cost
// more than the cache misses they remove. It is a variable so tests can
// force tiny products through the packed path.
var packedMinOps = 4 << 20

// usePacked reports whether an m×k·k×n product is worth packing.
func usePacked(m, k, n int) bool {
	if m <= 0 || n <= 0 || k <= 0 {
		return false
	}
	return 2*m*n*k >= packedMinOps
}

// packBuf is one worker's pair of pack buffers, drawn from the shared
// workspace. Obtain reuses the same backing arrays call after call, so
// steady-state packed GEMMs allocate nothing.
type packBuf struct {
	a, b *Tensor
}

var (
	packWS   = NewWorkspace()
	packMu   sync.Mutex
	packFree []*packBuf
)

// getPackBuf checks a buffer pair out of the free list, sized for one
// packMC×packKC A block and one packKC×nc B panel.
func getPackBuf(nc int) *packBuf {
	packMu.Lock()
	var pb *packBuf
	if n := len(packFree); n > 0 {
		pb = packFree[n-1]
		packFree = packFree[:n-1]
	} else {
		pb = &packBuf{}
	}
	packMu.Unlock()
	ncPad := roundUp(nc, packNR)
	pb.a = packWS.Obtain(pb.a, packMC*packKC)
	pb.b = packWS.Obtain(pb.b, packKC*ncPad)
	return pb
}

func putPackBuf(pb *packBuf) {
	packMu.Lock()
	packFree = append(packFree, pb)
	packMu.Unlock()
}

func roundUp(n, to int) int { return (n + to - 1) / to * to }

// packedGemm accumulates C += op(A)·op(B) over pre-zeroed C, where a is
// the m×k left operand (stored k×m when aTrans — the Aᵀ·B variant) and
// b the k×n right operand (stored n×k when bTrans — the A·Bᵀ variant).
// The output is split into slabs across the worker pool.
func packedGemm(a, b, c []float64, m, k, n int, aTrans, bTrans bool) {
	slab := func(i0, i1, j0, j1 int) {
		pb := getPackBuf(min(packNC, j1-j0))
		packedSlab(a, b, c, m, k, n, i0, i1, j0, j1, aTrans, bTrans, pb)
		putPackBuf(pb)
	}
	workers := maxWorkers
	// Row slabs unless the product is too short to feed every worker a
	// packMR-tall slab of its own — the conv layers' few-filters ×
	// N·OH·OW products — in which case split columns.
	if m >= packMR*workers || m >= n {
		parallelAligned(m, packMR, func(lo, hi int) { slab(lo, hi, 0, n) })
		return
	}
	parallelAligned(n, packNR, func(lo, hi int) { slab(0, m, lo, hi) })
}

// packedSlab runs the full jc/pc/ic loop nest over C[i0:i1, j0:j1].
func packedSlab(a, b, c []float64, m, k, n, i0, i1, j0, j1 int, aTrans, bTrans bool, pb *packBuf) {
	ap, bp := pb.a.data, pb.b.data
	for jc := j0; jc < j1; jc += packNC {
		nc := min(packNC, j1-jc)
		for pc := 0; pc < k; pc += packKC {
			kc := min(packKC, k-pc)
			if bTrans {
				packBTrans(bp, b, k, pc, kc, jc, nc)
			} else {
				packB(bp, b, n, pc, kc, jc, nc)
			}
			for ic := i0; ic < i1; ic += packMC {
				mc := min(packMC, i1-ic)
				if aTrans {
					packATrans(ap, a, m, ic, mc, pc, kc)
				} else {
					packA(ap, a, k, ic, mc, pc, kc)
				}
				for jr := 0; jr < nc; jr += packNR {
					nr := min(packNR, nc-jr)
					bs := bp[jr*kc : jr*kc+kc*packNR]
					for ir := 0; ir < mc; ir += packMR {
						mr := min(packMR, mc-ir)
						as := ap[ir*kc : ir*kc+kc*packMR]
						ct := c[(ic+ir)*n+jc+jr:]
						if mr == packMR && nr == packNR {
							kernel2x4(as, bs, ct, n, kc)
						} else {
							kernelEdge(as, bs, ct, n, kc, mr, nr)
						}
					}
				}
			}
		}
	}
}

// packA copies A[ic:ic+mc, pc:pc+kc] (row-major, leading dimension lda)
// into packMR-tall strips: strip s holds rows ic+2s and ic+2s+1 laid
// out k-major, dst[2p+r]. A trailing odd row is zero-padded; the padded
// lane feeds micro-tile results that are never stored.
func packA(dst, a []float64, lda, ic, mc, pc, kc int) {
	d := 0
	for ir := 0; ir < mc; ir += packMR {
		s := dst[d : d+packMR*kc]
		if mc-ir >= packMR {
			r0 := a[(ic+ir+0)*lda+pc : (ic+ir+0)*lda+pc+kc]
			r1 := a[(ic+ir+1)*lda+pc : (ic+ir+1)*lda+pc+kc]
			for p := 0; p < kc; p++ {
				s[2*p+0] = r0[p]
				s[2*p+1] = r1[p]
			}
		} else {
			r0 := a[(ic+ir)*lda+pc : (ic+ir)*lda+pc+kc]
			for p := 0; p < kc; p++ {
				s[2*p+0] = r0[p]
				s[2*p+1] = 0
			}
		}
		d += packMR * kc
	}
}

// packATrans is packA for the Aᵀ·B variant, where the logical m×k left
// operand is stored k×m: element (i, p) lives at a[p*ldm+i]. Reads walk
// packMR adjacent elements per p, so the copies stream.
func packATrans(dst, a []float64, ldm, ic, mc, pc, kc int) {
	d := 0
	for ir := 0; ir < mc; ir += packMR {
		s := dst[d : d+packMR*kc]
		if mc-ir >= packMR {
			for p := 0; p < kc; p++ {
				src := a[(pc+p)*ldm+ic+ir : (pc+p)*ldm+ic+ir+packMR]
				s[2*p+0] = src[0]
				s[2*p+1] = src[1]
			}
		} else {
			for p := 0; p < kc; p++ {
				s[2*p+0] = a[(pc+p)*ldm+ic+ir]
				s[2*p+1] = 0
			}
		}
		d += packMR * kc
	}
}

// packB copies B[pc:pc+kc, jc:jc+nc] (row-major, leading dimension ldb)
// into packNR-wide strips: strip s holds columns jc+4s..jc+4s+3 laid
// out k-major, dst[4p+c]. Columns past nc are zero-padded.
func packB(dst, b []float64, ldb, pc, kc, jc, nc int) {
	d := 0
	for jr := 0; jr < nc; jr += packNR {
		nr := min(packNR, nc-jr)
		s := dst[d : d+packNR*kc]
		if nr == packNR {
			for p := 0; p < kc; p++ {
				src := b[(pc+p)*ldb+jc+jr : (pc+p)*ldb+jc+jr+packNR]
				s[4*p+0] = src[0]
				s[4*p+1] = src[1]
				s[4*p+2] = src[2]
				s[4*p+3] = src[3]
			}
		} else {
			for i := range s {
				s[i] = 0
			}
			for p := 0; p < kc; p++ {
				src := b[(pc+p)*ldb+jc+jr : (pc+p)*ldb+jc+jr+nr]
				for c, v := range src {
					s[4*p+c] = v
				}
			}
		}
		d += packNR * kc
	}
}

// packBTrans is packB for the A·Bᵀ variant, where the logical k×n right
// operand is stored n×k: element (p, j) lives at b[j*ldk+p]. Each
// column of the strip is a contiguous run of the source.
func packBTrans(dst, b []float64, ldk, pc, kc, jc, nc int) {
	d := 0
	for jr := 0; jr < nc; jr += packNR {
		nr := min(packNR, nc-jr)
		s := dst[d : d+packNR*kc]
		if nr < packNR {
			for i := range s {
				s[i] = 0
			}
		}
		for c := 0; c < nr; c++ {
			col := b[(jc+jr+c)*ldk+pc : (jc+jr+c)*ldk+pc+kc]
			for p, v := range col {
				s[4*p+c] = v
			}
		}
		d += packNR * kc
	}
}

// kernel2x4 accumulates one full 2×4 tile of C from packed panels: ap
// holds 2 rows of A k-major (ap[2p+r]), bp 4 columns of B k-major
// (bp[4p+c]), and C is row-major with leading dimension ldc. The 8
// accumulators live in registers across the whole k loop; each starts
// from the partial sum already in C and every term is added with a
// separate multiply and add in ascending p order, keeping the result
// bitwise identical to the naive loop.
func kernel2x4(ap, bp []float64, c []float64, ldc, kc int) {
	c0 := c[0*ldc : 0*ldc+4 : 0*ldc+4]
	c1 := c[1*ldc : 1*ldc+4 : 1*ldc+4]
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	c10, c11, c12, c13 := c1[0], c1[1], c1[2], c1[3]
	ap = ap[: 2*kc : 2*kc]
	bp = bp[: 4*kc : 4*kc]
	for p := 0; 4*p+4 <= len(bp); p++ {
		a0, a1 := ap[2*p], ap[2*p+1]
		b0, b1, b2, b3 := bp[4*p], bp[4*p+1], bp[4*p+2], bp[4*p+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
	}
	c0[0], c0[1], c0[2], c0[3] = c00, c01, c02, c03
	c1[0], c1[1], c1[2], c1[3] = c10, c11, c12, c13
}

// kernelEdge handles the mr×nr boundary tiles (mr ≤ 2, nr ≤ 4). Pack
// padding fills the missing lanes with zeros, but only the valid mr×nr
// results are read from or stored to C, so padding never perturbs an
// output element.
func kernelEdge(ap, bp []float64, c []float64, ldc, kc, mr, nr int) {
	for r := 0; r < mr; r++ {
		crow := c[r*ldc : r*ldc+nr]
		for j := 0; j < nr; j++ {
			acc := crow[j]
			for p := 0; p < kc; p++ {
				acc += ap[p*packMR+r] * bp[p*packNR+j]
			}
			crow[j] = acc
		}
	}
}
