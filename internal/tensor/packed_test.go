package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// packedShapes sweeps the dimensions that break tiled kernels: degenerate
// products (a dimension of 1), primes that never divide the tile sizes,
// and sizes that straddle each blocking boundary — the packMR/packNR
// micro-tile, the packMC/packKC/packNC cache blocks, and the point where
// parallelAligned starts splitting slabs across workers.
var packedShapes = []struct{ m, k, n int }{
	// Degenerate: one dimension collapses to a single row/column/term.
	{1, 1, 1},
	{1, 300, 5},
	{1, 7, 1024},
	{33, 1, 300},
	{130, 257, 1},
	{1, 1, 9},
	// Primes: nothing divides the micro-tile or the blocks.
	{3, 5, 7},
	{31, 37, 41},
	{127, 13, 31},
	// Straddle the packMR=2 row pairing and packNR=4 column strips.
	{5, 20, 3},
	{6, 20, 4},
	{7, 20, 5},
	// Straddle packMC (A block rows).
	{packMC - 1, 64, 9},
	{packMC, 64, 9},
	{packMC + 1, 64, 9},
	// Straddle packKC (k block).
	{8, packKC - 1, 12},
	{8, packKC, 12},
	{8, packKC + 1, 12},
	// Straddle packNC (B panel columns).
	{3, 9, packNC - 1},
	{3, 9, packNC + 1},
	// Straddle the row-slab split at workers=8 (m around packMR·workers,
	// where packedGemm switches between row and column slabs).
	{2*8 - 1, 32, 40},
	{2 * 8, 32, 40},
	{2*8 + 1, 32, 40},
	// A mid-size shape whose slabs, blocks and edges all interact.
	{130, 257, 63},
}

// TestPackedAdversarialShapes is the property-style sweep from the issue:
// every shape, every variant, workers ∈ {1, 2, max}, packed forced on,
// compared bitwise against the naive reference.
func TestPackedAdversarialShapes(t *testing.T) {
	forcePacked(t)
	maxW := 8 // exceeds GOMAXPROCS on small runners; forces real slab splits
	for _, sz := range packedShapes {
		rng := rand.New(rand.NewSource(int64(sz.m*1000003 + sz.k*1009 + sz.n)))
		a := Randn(rng, 0, 1, sz.m, sz.k)
		b := Randn(rng, 0, 1, sz.k, sz.n)
		at := New(sz.k, sz.m)
		bt := New(sz.n, sz.k)
		for i := 0; i < sz.m; i++ {
			for p := 0; p < sz.k; p++ {
				at.data[p*sz.m+i] = a.data[i*sz.k+p]
			}
		}
		for p := 0; p < sz.k; p++ {
			for j := 0; j < sz.n; j++ {
				bt.data[j*sz.k+p] = b.data[p*sz.n+j]
			}
		}
		want := matMulRef(a, b)
		for _, workers := range []int{1, 2, maxW} {
			old := SetMaxWorkers(workers)
			for _, v := range []struct {
				name string
				run  func(dst *Tensor) error
			}{
				{"MatMulInto", func(dst *Tensor) error { return MatMulInto(a, b, dst) }},
				{"MatMulTransAInto", func(dst *Tensor) error { return MatMulTransAInto(at, b, dst) }},
				{"MatMulTransBInto", func(dst *Tensor) error { return MatMulTransBInto(a, bt, dst) }},
			} {
				dst := New(sz.m, sz.n)
				fillNaN(dst)
				if err := v.run(dst); err != nil {
					SetMaxWorkers(old)
					t.Fatal(err)
				}
				requireBitEqual(t, dst, want,
					fmt.Sprintf("%s %dx%dx%d workers=%d", v.name, sz.m, sz.k, sz.n, workers))
			}
			SetMaxWorkers(old)
		}
	}
}

// TestPackedThresholdDispatch pins the packed/fallback boundary: products
// below packedMinOps flops keep the classic kernels, at or above take the
// packed path, and the kernel counters record the split.
func TestPackedThresholdDispatch(t *testing.T) {
	old := packedMinOps
	packedMinOps = 2 * 8 * 8 * 8
	t.Cleanup(func() { packedMinOps = old })

	EnableKernelCounters(true)
	t.Cleanup(func() { EnableKernelCounters(false) })
	ResetKernelCounters()

	rng := rand.New(rand.NewSource(21))
	small := Randn(rng, 0, 1, 7, 8)  // 2·7·8·8 < threshold → fallback
	sright := Randn(rng, 0, 1, 8, 8) // exactly at threshold → packed
	big := Randn(rng, 0, 1, 8, 8)    // 2·8·8·8 ≥ threshold → packed
	dstS := New(7, 8)
	dstB := New(8, 8)
	if err := MatMulInto(small, sright, dstS); err != nil {
		t.Fatal(err)
	}
	if err := MatMulInto(big, sright, dstB); err != nil {
		t.Fatal(err)
	}
	calls, _ := KernelCounters()
	if calls != 2 {
		t.Fatalf("KernelCounters calls = %d, want 2", calls)
	}
	if got := PackedKernelCalls(); got != 1 {
		t.Fatalf("PackedKernelCalls = %d, want 1 (only the 8x8x8 product)", got)
	}
	if !usePacked(8, 8, 8) || usePacked(7, 8, 8) {
		t.Fatalf("usePacked boundary wrong: usePacked(8,8,8)=%v usePacked(7,8,8)=%v",
			usePacked(8, 8, 8), usePacked(7, 8, 8))
	}
	if usePacked(0, 8, 8) || usePacked(8, -1, 8) {
		t.Fatal("usePacked accepted a degenerate dimension")
	}
}
