package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers bounds the parallelism of the tensor kernels. It is a
// variable (not a constant) so tests can exercise single-threaded paths.
var maxWorkers = runtime.GOMAXPROCS(0)

// SetMaxWorkers overrides the number of parallel chunks used by the
// kernels. Values below 1 are clamped to 1. It returns the previous value.
// It is intended for tests and benchmarks and is not safe to call
// concurrently with running kernels.
func SetMaxWorkers(n int) int {
	old := maxWorkers
	if n < 1 {
		n = 1
	}
	maxWorkers = n
	return old
}

// The kernels share one persistent pool of worker goroutines, started
// lazily on the first parallel call. Reusing workers removes the
// goroutine-spawn cost the old per-call fan-out paid on every kernel
// invocation (and the per-sample fan-out Conv2D paid on every batch).
var (
	poolOnce  sync.Once
	poolTasks chan func()
)

func ensurePool() {
	poolOnce.Do(func() {
		workers := runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
		poolTasks = make(chan func(), 8*workers)
		for i := 0; i < workers; i++ {
			go func() {
				for task := range poolTasks {
					task()
				}
			}()
		}
	})
}

// minParallel is the item count below which a fine-grained loop runs
// inline: splitting fewer items costs more in hand-off than it saves.
const minParallel = 256

// parallelFor runs body(lo, hi) over [0, n) split into roughly equal chunks
// across the worker pool. For small n it runs inline.
func parallelFor(n int, body func(lo, hi int)) {
	parallelRange(n, minParallel, body)
}

// parallelRange is parallelFor with an explicit inline threshold, for
// loops whose per-item work is heavy (e.g. one im2col per batch sample):
// such loops are worth splitting even at very small n.
//
// Chunks are executed on the persistent worker pool; the calling goroutine
// always runs the first chunk itself. If the pool's queue is full the
// remaining chunks also run inline, which keeps nested or heavily
// concurrent callers deadlock-free. Bodies must not themselves depend on
// running in a particular goroutine.
// parallelAligned splits [0, n) across the worker pool in chunks
// rounded up to a multiple of align, so tiled kernels see whole tiles
// everywhere except the final chunk. Used by the packed GEMM, whose
// slab boundaries would otherwise force edge micro-kernels mid-matrix.
func parallelAligned(n, align int, body func(lo, hi int)) {
	workers := maxWorkers
	if workers > n/align {
		workers = n / align
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	ensurePool()
	chunk := (n + workers - 1) / workers
	chunk = (chunk + align - 1) / align * align
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		task := func(lo, hi int) func() {
			return func() {
				defer wg.Done()
				body(lo, hi)
			}
		}(lo, hi)
		select {
		case poolTasks <- task:
		default:
			task()
		}
	}
	body(0, chunk)
	wg.Wait()
}

func parallelRange(n, minPar int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minPar {
		body(0, n)
		return
	}
	ensurePool()
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		task := func(lo, hi int) func() {
			return func() {
				defer wg.Done()
				body(lo, hi)
			}
		}(lo, hi)
		select {
		case poolTasks <- task:
		default:
			task()
		}
	}
	body(0, chunk)
	wg.Wait()
}
