package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers bounds the goroutine pool used by parallel kernels. It is a
// variable (not a constant) so tests can exercise single-threaded paths.
var maxWorkers = runtime.GOMAXPROCS(0)

// SetMaxWorkers overrides the number of goroutines used by parallel
// kernels. Values below 1 are clamped to 1. It returns the previous value.
// It is intended for tests and benchmarks and is not safe to call
// concurrently with running kernels.
func SetMaxWorkers(n int) int {
	old := maxWorkers
	if n < 1 {
		n = 1
	}
	maxWorkers = n
	return old
}

// parallelFor runs body(lo, hi) over [0, n) split into roughly equal chunks
// across the worker pool. For small n it runs inline to avoid goroutine
// overhead.
func parallelFor(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	// Heuristic: below this many items the goroutine fan-out costs more
	// than it saves.
	const minParallel = 256
	if workers <= 1 || n < minParallel {
		body(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
