package tensor

import "sync/atomic"

// Kernel counters: cheap global accounting of GEMM work, for the
// per-layer profiler's "where do the FLOPs actually go" view. The
// package stays stdlib-only and free of the obs dependency; internal/nn
// snapshots these into the metrics registry. Disabled they cost one
// atomic load and a branch per kernel call — noise next to a GEMM.
var (
	kernelCountersOn atomic.Bool
	matmulCalls      atomic.Int64
	matmulFLOPs      atomic.Int64
	matmulPacked     atomic.Int64
)

// EnableKernelCounters switches GEMM call/FLOP accounting on or off.
func EnableKernelCounters(on bool) { kernelCountersOn.Store(on) }

// KernelCountersEnabled reports whether accounting is on.
func KernelCountersEnabled() bool { return kernelCountersOn.Load() }

// KernelCounters returns the GEMM kernel totals since the last reset:
// number of MatMul*Into invocations and the FLOPs they performed
// (2·m·n·k per m×k · k×n product).
func KernelCounters() (calls, flops int64) {
	return matmulCalls.Load(), matmulFLOPs.Load()
}

// PackedKernelCalls returns how many of those invocations took the
// BLIS-style packed path (the rest ran the classic blocked kernels
// below the packedMinOps threshold). The split tells the profiler — and
// anyone reading metrics.json — whether a workload's GEMM time is
// governed by the packed kernels or by small-matrix fallbacks.
func PackedKernelCalls() int64 { return matmulPacked.Load() }

// ResetKernelCounters zeroes the kernel totals.
func ResetKernelCounters() {
	matmulCalls.Store(0)
	matmulFLOPs.Store(0)
	matmulPacked.Store(0)
}

// countMatMul books one m×k · k×n product.
func countMatMul(m, n, k int) {
	if !kernelCountersOn.Load() {
		return
	}
	matmulCalls.Add(1)
	matmulFLOPs.Add(2 * int64(m) * int64(n) * int64(k))
}

// countMatMulPacked books one product dispatched to the packed path.
func countMatMulPacked() {
	if !kernelCountersOn.Load() {
		return
	}
	matmulPacked.Add(1)
}
