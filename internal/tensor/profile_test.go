package tensor

import (
	"math/rand"
	"testing"
)

func TestKernelCountersCountGEMMWork(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 0, 1, 4, 6)
	bT := Randn(rng, 0, 1, 5, 6) // for MatMulTransB: (4,6)·(5,6)ᵀ
	b := Randn(rng, 0, 1, 6, 5)
	dst := Zeros(4, 5)

	EnableKernelCounters(true)
	defer EnableKernelCounters(false)
	ResetKernelCounters()

	if err := MatMulInto(a, b, dst); err != nil {
		t.Fatal(err)
	}
	if err := MatMulTransBInto(a, bT, dst); err != nil {
		t.Fatal(err)
	}
	calls, flops := KernelCounters()
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	// Both products are 4×6 · 6×5: 2·m·n·k FLOPs each.
	if want := int64(2 * 2 * 4 * 5 * 6); flops != want {
		t.Fatalf("flops = %d, want %d", flops, want)
	}

	ResetKernelCounters()
	if c, f := KernelCounters(); c != 0 || f != 0 {
		t.Fatalf("after reset: calls=%d flops=%d, want 0,0", c, f)
	}
}

func TestKernelCountersDisabledDoNotCount(t *testing.T) {
	EnableKernelCounters(false)
	ResetKernelCounters()
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 0, 1, 3, 3)
	b := Randn(rng, 0, 1, 3, 3)
	dst := Zeros(3, 3)
	if err := MatMulInto(a, b, dst); err != nil {
		t.Fatal(err)
	}
	if c, f := KernelCounters(); c != 0 || f != 0 {
		t.Fatalf("disabled counters moved: calls=%d flops=%d", c, f)
	}
}
