// Package tensor provides dense, row-major float64 tensors and the
// numerical kernels (element-wise arithmetic, blocked parallel matrix
// multiplication, im2col/col2im, reductions) that underpin the neural
// network training engine in internal/nn.
//
// Tensors are deliberately simple: a shape and a contiguous backing slice.
// All randomness flows through explicit *rand.Rand values so every caller
// is deterministic given a seed. Heavy kernels (MatMul, im2col) split work
// across a goroutine pool sized by runtime.GOMAXPROCS(0).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float64 tensor. The zero value is not usable;
// construct tensors with New, Zeros, FromSlice, or the random constructors.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative; a zero-dimensional call returns a
// scalar tensor with one element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float64, n)}
}

// Zeros is an alias for New, provided for readability at call sites that
// emphasise the initial contents rather than allocation.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Ones returns a tensor of the given shape filled with 1.
func Ones(shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = 1
	}
	return t
}

// Full returns a tensor of the given shape filled with v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); it is an error for len(data) not to match the
// shape's element count.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d < 0 {
			return nil, fmt.Errorf("tensor: negative dimension %d in shape %v", d, shape)
		}
		n *= d
	}
	if len(data) != n {
		return nil, fmt.Errorf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}, nil
}

// MustFromSlice is FromSlice but panics on error. Intended for tests and
// literals whose shape is known statically.
func MustFromSlice(data []float64, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Randn returns a tensor with elements drawn i.i.d. from N(mean, std²).
func Randn(rng *rand.Rand, mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64()*std + mean
	}
	return t
}

// Uniform returns a tensor with elements drawn i.i.d. from U[lo, hi).
func Uniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// Shape returns the tensor's dimensions. The returned slice is shared; do
// not modify it.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of t with a new shape covering the same backing
// data. The element counts must match.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.data), shape, n)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}, nil
}

// MustReshape is Reshape but panics on error.
func (t *Tensor) MustReshape(shape ...int) *Tensor {
	r, err := t.Reshape(shape...)
	if err != nil {
		panic(err)
	}
	return r
}

// index converts multi-dimensional indices to a flat offset.
func (t *Tensor) index(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dimension %d", x, t.shape[i], i))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.index(idx...)] }

// Set assigns v to the element at the given indices.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.index(idx...)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// checkSameShape panics unless t and u share a shape; op names the caller
// for the panic message.
func (t *Tensor) checkSameShape(u *Tensor, op string) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, u.shape))
	}
}

// AddInto sets dst = t + u element-wise and returns dst. dst may alias t or u.
func (t *Tensor) AddInto(u, dst *Tensor) *Tensor {
	t.checkSameShape(u, "Add")
	t.checkSameShape(dst, "Add dst")
	for i := range t.data {
		dst.data[i] = t.data[i] + u.data[i]
	}
	return dst
}

// Add returns t + u element-wise in a new tensor.
func (t *Tensor) Add(u *Tensor) *Tensor { return t.AddInto(u, New(t.shape...)) }

// Sub returns t − u element-wise in a new tensor.
func (t *Tensor) Sub(u *Tensor) *Tensor {
	t.checkSameShape(u, "Sub")
	d := New(t.shape...)
	for i := range t.data {
		d.data[i] = t.data[i] - u.data[i]
	}
	return d
}

// Mul returns the element-wise (Hadamard) product in a new tensor.
func (t *Tensor) Mul(u *Tensor) *Tensor {
	t.checkSameShape(u, "Mul")
	d := New(t.shape...)
	for i := range t.data {
		d.data[i] = t.data[i] * u.data[i]
	}
	return d
}

// Scale returns s·t in a new tensor.
func (t *Tensor) Scale(s float64) *Tensor {
	d := New(t.shape...)
	for i := range t.data {
		d.data[i] = s * t.data[i]
	}
	return d
}

// ScaleInPlace multiplies every element by s and returns t.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AddScaled performs t += s·u in place (an axpy), and returns t.
func (t *Tensor) AddScaled(u *Tensor, s float64) *Tensor {
	t.checkSameShape(u, "AddScaled")
	for i := range t.data {
		t.data[i] += s * u.data[i]
	}
	return t
}

// Apply returns a new tensor whose elements are f applied to t's elements.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	d := New(t.shape...)
	for i := range t.data {
		d.data[i] = f(t.data[i])
	}
	return d
}

// ApplyInPlace replaces each element x with f(x) and returns t.
func (t *Tensor) ApplyInPlace(f func(float64) float64) *Tensor {
	for i := range t.data {
		t.data[i] = f(t.data[i])
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for an empty tensor).
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Argmax returns the flat index of the first maximal element.
// It panics on an empty tensor.
func (t *Tensor) Argmax() int {
	if len(t.data) == 0 {
		panic("tensor: Argmax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// Norm2 returns the Euclidean (Frobenius) norm of t.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports whether t and u have the same shape and all elements within
// tol of each other.
func (t *Tensor) Equal(u *Tensor, tol float64) bool {
	if !t.SameShape(u) {
		return false
	}
	for i := range t.data {
		if math.Abs(t.data[i]-u.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if len(t.data) <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	return fmt.Sprintf("Tensor%v[%d elements, mean=%.4g]", t.shape, len(t.data), t.Mean())
}
