package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Rank() != 3 || x.Len() != 24 {
		t.Fatalf("got rank=%d len=%d, want 3, 24", x.Rank(), x.Len())
	}
	if x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad dims %v", x.Shape())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative dimension")
		}
	}()
	New(2, -1)
}

func TestOnesAndFull(t *testing.T) {
	if got := Ones(3).Sum(); got != 3 {
		t.Fatalf("Ones sum = %v, want 3", got)
	}
	if got := Full(2.5, 4).Sum(); got != 10 {
		t.Fatalf("Full sum = %v, want 10", got)
	}
}

func TestFromSlice(t *testing.T) {
	x, err := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if x.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", x.At(1, 2))
	}
	if _, err := FromSlice([]float64{1, 2}, 3); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := FromSlice(nil, -2); err == nil {
		t.Fatal("expected negative-dim error")
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if x.At(2, 1) != 7.5 {
		t.Fatalf("At after Set = %v", x.At(2, 1))
	}
	if x.Data()[2*4+1] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshape(t *testing.T) {
	x := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y, err := x.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(2, 1) != 6 {
		t.Fatalf("reshape changed data: %v", y.Data())
	}
	// Views share data.
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape must return a view")
	}
	if _, err := x.Reshape(4, 2); err == nil {
		t.Fatal("expected element-count error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := Ones(4)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestArithmetic(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3}, 3)
	b := MustFromSlice([]float64{4, 5, 6}, 3)
	if got := a.Add(b).Data(); got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a).Data(); got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Mul(b).Data(); got[1] != 10 {
		t.Fatalf("Mul = %v", got)
	}
	if got := a.Scale(2).Data(); got[2] != 6 {
		t.Fatalf("Scale = %v", got)
	}
	a.AddScaled(b, 10)
	if a.At(0) != 41 {
		t.Fatalf("AddScaled = %v", a.Data())
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Ones(2).Add(Ones(3))
}

func TestReductions(t *testing.T) {
	x := MustFromSlice([]float64{3, -1, 4, 1, -5, 9}, 6)
	if x.Sum() != 11 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if math.Abs(x.Mean()-11.0/6) > 1e-12 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Max() != 9 || x.Min() != -5 {
		t.Fatalf("Max/Min = %v/%v", x.Max(), x.Min())
	}
	if x.Argmax() != 5 {
		t.Fatalf("Argmax = %d", x.Argmax())
	}
	want := math.Sqrt(9 + 1 + 16 + 1 + 25 + 81)
	if math.Abs(x.Norm2()-want) > 1e-12 {
		t.Fatalf("Norm2 = %v, want %v", x.Norm2(), want)
	}
}

func TestApply(t *testing.T) {
	x := MustFromSlice([]float64{-1, 2}, 2)
	y := x.Apply(math.Abs)
	if y.At(0) != 1 || x.At(0) != -1 {
		t.Fatal("Apply must not mutate the receiver")
	}
	x.ApplyInPlace(func(v float64) float64 { return v * v })
	if x.At(0) != 1 || x.At(1) != 4 {
		t.Fatalf("ApplyInPlace = %v", x.Data())
	}
}

func TestRandomConstructorsDeterministic(t *testing.T) {
	a := Randn(rand.New(rand.NewSource(7)), 0, 1, 100)
	b := Randn(rand.New(rand.NewSource(7)), 0, 1, 100)
	if !a.Equal(b, 0) {
		t.Fatal("Randn must be deterministic given a seed")
	}
	u := Uniform(rand.New(rand.NewSource(7)), 2, 3, 1000)
	if u.Min() < 2 || u.Max() >= 3 {
		t.Fatalf("Uniform out of range [%v,%v)", u.Min(), u.Max())
	}
}

func TestMatMulSmall(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data()[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
}

func TestMatMulErrors(t *testing.T) {
	if _, err := MatMul(Ones(2, 3), Ones(2, 3)); err == nil {
		t.Fatal("expected inner-dimension error")
	}
	if _, err := MatMul(Ones(6), Ones(2, 3)); err == nil {
		t.Fatal("expected rank error")
	}
}

// TestMatMulTransposedAgreement checks MatMulTransA/B against explicit
// transposition for random matrices.
func TestMatMulTransposedAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 0, 1, 5, 7) // k×m for TransA
	b := Randn(rng, 0, 1, 5, 4) // k×n
	c := Randn(rng, 0, 1, 6, 7) // m×k for TransB
	d := Randn(rng, 0, 1, 9, 7) // n×k

	at, _ := Transpose2D(a)
	want, _ := MatMul(at, b)
	got, err := MatMulTransA(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-12) {
		t.Fatal("MatMulTransA disagrees with explicit transpose")
	}

	dt, _ := Transpose2D(d)
	want2, _ := MatMul(c, dt)
	got2, err := MatMulTransB(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(want2, 1e-12) {
		t.Fatal("MatMulTransB disagrees with explicit transpose")
	}
}

func TestMatVec(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	x := MustFromSlice([]float64{1, -1}, 2)
	y, err := MatVec(a, x)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(0) != -1 || y.At(1) != -1 {
		t.Fatalf("MatVec = %v", y.Data())
	}
	if _, err := MatVec(a, Ones(3)); err == nil {
		t.Fatal("expected dimension error")
	}
}

// TestMatMulParallelMatchesSerial verifies the parallel kernel against a
// single-worker run on a larger matrix.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 0, 1, 64, 48)
	b := Randn(rng, 0, 1, 48, 32)
	par := MustMatMul(a, b)
	old := SetMaxWorkers(1)
	ser := MustMatMul(a, b)
	SetMaxWorkers(old)
	if !par.Equal(ser, 1e-12) {
		t.Fatal("parallel MatMul disagrees with serial")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random shapes.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := Randn(rng, 0, 1, m, k)
		b := Randn(rng, 0, 1, k, n)
		ab := MustMatMul(a, b)
		abT, _ := Transpose2D(ab)
		bT, _ := Transpose2D(b)
		aT, _ := Transpose2D(a)
		want := MustMatMul(bT, aT)
		return abT.Equal(want, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConvOutSize(t *testing.T) {
	got, err := ConvOutSize(32, 3, 1, 1)
	if err != nil || got != 32 {
		t.Fatalf("ConvOutSize(32,3,1,1) = %d, %v", got, err)
	}
	got, err = ConvOutSize(32, 2, 2, 0)
	if err != nil || got != 16 {
		t.Fatalf("ConvOutSize(32,2,2,0) = %d, %v", got, err)
	}
	if _, err := ConvOutSize(2, 5, 1, 0); err == nil {
		t.Fatal("expected geometry error")
	}
	if _, err := ConvOutSize(8, 3, 0, 0); err == nil {
		t.Fatal("expected stride error")
	}
}

// naiveConv computes a direct convolution for cross-checking Im2Col.
func naiveConv(x *Tensor, w *Tensor, stride, pad int) *Tensor {
	c, h, wd := x.Dim(0), x.Dim(1), x.Dim(2)
	f, _, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	oh, _ := ConvOutSize(h, kh, stride, pad)
	ow, _ := ConvOutSize(wd, kw, stride, pad)
	out := New(f, oh, ow)
	for fi := 0; fi < f; fi++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := 0.0
				for ch := 0; ch < c; ch++ {
					for ky := 0; ky < kh; ky++ {
						for kx := 0; kx < kw; kx++ {
							iy, ix := oy*stride-pad+ky, ox*stride-pad+kx
							if iy < 0 || iy >= h || ix < 0 || ix >= wd {
								continue
							}
							s += x.At(ch, iy, ix) * w.At(fi, ch, ky, kx)
						}
					}
				}
				out.Set(s, fi, oy, ox)
			}
		}
	}
	return out
}

// TestIm2ColConvolutionEquivalence: filter-matrix × im2col == direct conv.
func TestIm2ColConvolutionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ c, h, w, f, k, stride, pad int }{
		{1, 5, 5, 2, 3, 1, 1},
		{3, 8, 8, 4, 3, 1, 1},
		{2, 7, 9, 3, 3, 2, 0},
		{2, 6, 6, 1, 2, 2, 0},
	} {
		x := Randn(rng, 0, 1, tc.c, tc.h, tc.w)
		w := Randn(rng, 0, 1, tc.f, tc.c, tc.k, tc.k)
		cols, err := Im2Col(x, tc.k, tc.k, tc.stride, tc.pad)
		if err != nil {
			t.Fatal(err)
		}
		wm := w.MustReshape(tc.f, tc.c*tc.k*tc.k)
		got := MustMatMul(wm, cols)
		oh, _ := ConvOutSize(tc.h, tc.k, tc.stride, tc.pad)
		ow, _ := ConvOutSize(tc.w, tc.k, tc.stride, tc.pad)
		want := naiveConv(x, w, tc.stride, tc.pad).MustReshape(tc.f, oh*ow)
		if !got.Equal(want, 1e-10) {
			t.Fatalf("im2col conv disagrees with naive conv for %+v", tc)
		}
	}
}

// TestCol2ImAdjoint verifies <Im2Col(x), y> == <x, Col2Im(y)>, the defining
// property of an adjoint pair, for random tensors.
func TestCol2ImAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c, h, w, k, stride, pad := 2, 6, 7, 3, 2, 1
	x := Randn(rng, 0, 1, c, h, w)
	cols, err := Im2Col(x, k, k, stride, pad)
	if err != nil {
		t.Fatal(err)
	}
	y := Randn(rng, 0, 1, cols.Dim(0), cols.Dim(1))
	back, err := Col2Im(y, c, h, w, k, k, stride, pad)
	if err != nil {
		t.Fatal(err)
	}
	lhs := 0.0
	for i, v := range cols.Data() {
		lhs += v * y.Data()[i]
	}
	rhs := 0.0
	for i, v := range x.Data() {
		rhs += v * back.Data()[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestCol2ImShapeError(t *testing.T) {
	if _, err := Col2Im(Ones(3, 3), 1, 4, 4, 2, 2, 1, 0); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestEqualAndString(t *testing.T) {
	a := Ones(2, 2)
	b := Ones(2, 2)
	b.Set(1.05, 0, 0)
	if a.Equal(b, 0.01) {
		t.Fatal("Equal with tight tol should fail")
	}
	if !a.Equal(b, 0.1) {
		t.Fatal("Equal with loose tol should pass")
	}
	if a.Equal(Ones(4), 1) {
		t.Fatal("Equal must require same shape")
	}
	if s := a.String(); s == "" {
		t.Fatal("String should be non-empty")
	}
	if s := Ones(100).String(); s == "" {
		t.Fatal("summary String should be non-empty")
	}
}

func TestParallelForEdgeCases(t *testing.T) {
	ran := false
	parallelFor(0, func(lo, hi int) { ran = true })
	if ran {
		t.Fatal("parallelFor(0) must not invoke body")
	}
	sum := make([]int, 10000)
	parallelFor(len(sum), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum[i] = i
		}
	})
	for i, v := range sum {
		if v != i {
			t.Fatalf("parallelFor missed index %d", i)
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 0, 1, 128, 128)
	y := Randn(rng, 0, 1, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustMatMul(x, y)
	}
}

func BenchmarkIm2Col32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 0, 1, 8, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Im2Col(x, 3, 3, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}
