package tensor

import (
	"fmt"
	"math/bits"
	"sync"
)

// wsClasses is the number of power-of-two size classes a Workspace
// maintains: buffers up to 2^33 elements (64 GiB of float64) are pooled,
// larger ones fall through to the garbage collector.
const wsClasses = 34

// Workspace recycles scratch tensors through power-of-two size classes
// backed by sync.Pool, so the training hot path stops allocating (and the
// garbage collector stops scanning) a fresh buffer for every forward cache,
// gradient, and rearrange matrix of every step.
//
// The protocol is ownership-based: a tensor obtained from a workspace is
// exclusively owned by the caller until it is handed back with Put (or
// recycled implicitly by Obtain). Workspaces are safe for concurrent use;
// the tensors they hand out are not shared until the owner shares them.
type Workspace struct {
	classes [wsClasses]sync.Pool
}

// NewWorkspace returns an empty workspace. The zero value is also usable.
func NewWorkspace() *Workspace { return &Workspace{} }

// sizeClassCeil returns the bucket whose buffers can hold n elements:
// ceil(log2 n). Buffers in bucket k are allocated with cap ≥ 2^k.
func sizeClassCeil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// sizeClassFloor returns the bucket a buffer of capacity c belongs to:
// floor(log2 c), so every buffer in bucket k satisfies cap ≥ 2^k.
func sizeClassFloor(c int) int { return bits.Len(uint(c)) - 1 }

func shapeElems(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return n
}

// Get returns a tensor of the given shape with unspecified contents,
// reusing a pooled buffer when one fits. Use GetZeroed when the caller
// does not overwrite every element.
func (w *Workspace) Get(shape ...int) *Tensor {
	n := shapeElems(shape)
	sh := append([]int(nil), shape...)
	if n == 0 {
		return &Tensor{shape: sh}
	}
	cl := sizeClassCeil(n)
	if cl >= wsClasses {
		return &Tensor{shape: sh, data: make([]float64, n)}
	}
	if v := w.classes[cl].Get(); v != nil {
		if buf := v.([]float64); cap(buf) >= n {
			return &Tensor{shape: sh, data: buf[:n]}
		}
	}
	return &Tensor{shape: sh, data: make([]float64, n, 1<<cl)}
}

// GetZeroed is Get with the contents cleared.
func (w *Workspace) GetZeroed(shape ...int) *Tensor {
	t := w.Get(shape...)
	t.Zero()
	return t
}

// Put recycles t's storage into the workspace and detaches it from t, so
// accidental use after Put fails loudly (zero-length tensor) instead of
// silently aliasing a buffer someone else now owns. Put of nil is a no-op.
func (w *Workspace) Put(t *Tensor) {
	if t == nil || cap(t.data) == 0 {
		return
	}
	if cl := sizeClassFloor(cap(t.data)); cl < wsClasses {
		w.classes[cl].Put(t.data[:cap(t.data)])
	}
	t.data = nil
	t.shape = nil
}

// Obtain returns a tensor of the given shape with unspecified contents,
// reusing old's storage in place when it is large enough (the common
// steady-state case: same shapes step after step, zero allocations).
// Otherwise old is recycled into the pool and a pooled or fresh buffer is
// returned. old may be nil. Any other reference to old sees its shape
// change, so Obtain is only for buffers privately owned by the caller.
func (w *Workspace) Obtain(old *Tensor, shape ...int) *Tensor {
	n := shapeElems(shape)
	if old != nil && n > 0 && cap(old.data) >= n {
		old.data = old.data[:n]
		old.shape = append(old.shape[:0], shape...)
		return old
	}
	if old != nil {
		w.Put(old)
	}
	return w.Get(shape...)
}

// ObtainZeroed is Obtain with the contents cleared.
func (w *Workspace) ObtainZeroed(old *Tensor, shape ...int) *Tensor {
	t := w.Obtain(old, shape...)
	t.Zero()
	return t
}
