// Package tsdb is an embedded time-series store for run metrics. A
// Sampler walks an obs.Registry on a fixed interval and appends every
// series (counters, gauges, histogram count/sum/p99) to a single
// crash-safe file under the run's commons dir; queries serve
// step-aligned, gap-annotated windows to the dashboards, the
// `a4nn-analyze series` subcommand, and the health engine's cross-run
// regression monitor.
//
// The on-disk format follows the flight recorder's framing discipline
// (internal/obs/recorder.go): a fixed header, then self-describing
// CRC-framed blocks, appended with O_APPEND writes so a SIGKILL can
// only ever tear the final block. Block payloads are Gorilla-style
// compressed: delta-of-delta timestamps and XOR'd float bits, which
// squeezes a steady sampling interval over slowly-moving metrics to a
// couple of bits per sample. Reopen decodes every complete block and
// truncates a torn tail, exactly like events.jsonl recovery.
package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/bits"
)

const (
	fileMagic   = "A4TS"
	fileVersion = 1

	// maxSeriesName bounds block name fields, mirroring the flight
	// recorder's section-name cap: a larger length in the framing is
	// corruption, not a long name.
	maxSeriesName = 256

	// maxChunkSamples bounds the sample count claimed by a block
	// payload so a corrupt varint cannot drive a huge allocation.
	maxChunkSamples = 1 << 20
)

// headerBytes renders the file header (magic + format version).
func headerBytes() []byte {
	b := make([]byte, 0, len(fileMagic)+4)
	b = append(b, fileMagic...)
	return binary.LittleEndian.AppendUint32(b, fileVersion)
}

// appendBlock frames one sealed chunk: u32 name length, series name,
// u32 payload length, payload, u32 CRC-32 (IEEE) of the payload. The
// layout matches the flight recorder's writeSection so both artifacts
// share one corruption-detection story.
func appendBlock(dst []byte, name string, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(name)))
	dst = append(dst, name...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// Block is one decoded on-disk chunk of a series.
type Block struct {
	Series string
	Times  []int64 // unix milliseconds, in append order
	Values []float64
}

// DecodeBlocks decodes a complete series file. It returns every intact
// block, the byte offset just past the last intact block, and a non-nil
// error when the tail is torn or corrupt (the usual aftermath of a
// SIGKILL mid-append). It never panics on arbitrary input: every length
// is bounds-checked against the remaining bytes and every payload is
// CRC-verified before the chunk decoder sees it.
func DecodeBlocks(data []byte) (blocks []Block, good int, err error) {
	headLen := len(fileMagic) + 4
	if len(data) < headLen {
		return nil, 0, fmt.Errorf("tsdb: short header (%d bytes)", len(data))
	}
	if string(data[:len(fileMagic)]) != fileMagic {
		return nil, 0, fmt.Errorf("tsdb: bad magic %q", data[:len(fileMagic)])
	}
	if v := binary.LittleEndian.Uint32(data[len(fileMagic):headLen]); v != fileVersion {
		return nil, 0, fmt.Errorf("tsdb: unsupported format version %d", v)
	}
	good = headLen
	for good < len(data) {
		rest := data[good:]
		if len(rest) < 4 {
			return blocks, good, fmt.Errorf("tsdb: torn block frame at offset %d", good)
		}
		nameLen := binary.LittleEndian.Uint32(rest)
		if nameLen == 0 || nameLen > maxSeriesName || int64(nameLen) > int64(len(rest)-4) {
			return blocks, good, fmt.Errorf("tsdb: bad name length %d at offset %d", nameLen, good)
		}
		name := string(rest[4 : 4+nameLen])
		rest = rest[4+nameLen:]
		if len(rest) < 4 {
			return blocks, good, fmt.Errorf("tsdb: torn block %q at offset %d", name, good)
		}
		payloadLen := binary.LittleEndian.Uint32(rest)
		if int64(payloadLen) > int64(len(rest)-4) || len(rest)-4-int(payloadLen) < 4 {
			return blocks, good, fmt.Errorf("tsdb: torn payload for %q at offset %d", name, good)
		}
		payload := rest[4 : 4+payloadLen]
		sum := binary.LittleEndian.Uint32(rest[4+payloadLen:])
		if crc32.ChecksumIEEE(payload) != sum {
			return blocks, good, fmt.Errorf("tsdb: CRC mismatch for %q at offset %d", name, good)
		}
		ts, vs, derr := decodeChunk(payload)
		if derr != nil {
			return blocks, good, fmt.Errorf("tsdb: block %q at offset %d: %w", name, good, derr)
		}
		blocks = append(blocks, Block{Series: name, Times: ts, Values: vs})
		good += 4 + int(nameLen) + 4 + int(payloadLen) + 4
	}
	return blocks, good, nil
}

// encodeChunk compresses one run of samples. Layout: uvarint count,
// varint first timestamp (unix ms), 8 raw bytes for the first value,
// then an interleaved bitstream of delta-of-delta timestamps and
// Gorilla XOR values for the rest.
func encodeChunk(ts []int64, vs []float64) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(ts)))
	buf = binary.AppendVarint(buf, ts[0])
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(vs[0]))
	w := bitWriter{buf: buf}
	prevT, prevDelta := ts[0], int64(0)
	prevV := math.Float64bits(vs[0])
	var winLZ, winTZ uint
	haveWin := false
	for i := 1; i < len(ts); i++ {
		delta := ts[i] - prevT
		dod := delta - prevDelta
		prevT, prevDelta = ts[i], delta
		switch z := zigzag(dod); {
		case z == 0:
			w.writeBits(0, 1)
		case z < 1<<7:
			w.writeBits(0b10, 2)
			w.writeBits(z, 7)
		case z < 1<<12:
			w.writeBits(0b110, 3)
			w.writeBits(z, 12)
		case z < 1<<32:
			w.writeBits(0b1110, 4)
			w.writeBits(z, 32)
		default:
			w.writeBits(0b1111, 4)
			w.writeBits(z, 64)
		}
		cur := math.Float64bits(vs[i])
		x := cur ^ prevV
		prevV = cur
		if x == 0 {
			w.writeBits(0, 1)
			continue
		}
		w.writeBits(1, 1)
		lz := uint(bits.LeadingZeros64(x))
		if lz > 31 {
			lz = 31 // 5-bit field; a larger count just widens the window
		}
		tz := uint(bits.TrailingZeros64(x))
		if haveWin && lz >= winLZ && tz >= winTZ {
			w.writeBits(0, 1)
			w.writeBits(x>>winTZ, 64-winLZ-winTZ)
			continue
		}
		winLZ, winTZ, haveWin = lz, tz, true
		sig := 64 - lz - tz
		w.writeBits(1, 1)
		w.writeBits(uint64(lz), 5)
		w.writeBits(uint64(sig-1), 6)
		w.writeBits(x>>tz, sig)
	}
	return w.buf
}

// decodeChunk is the inverse of encodeChunk. All reads are bounded; a
// truncated or corrupt payload yields an error, never a panic.
func decodeChunk(payload []byte) ([]int64, []float64, error) {
	n, sz := binary.Uvarint(payload)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("bad sample count varint")
	}
	payload = payload[sz:]
	if n == 0 || n > maxChunkSamples {
		return nil, nil, fmt.Errorf("implausible sample count %d", n)
	}
	// Each sample past the first costs at least two bits, so a count
	// the payload cannot possibly hold is corruption — reject before
	// allocating.
	if n-1 > uint64(len(payload))*4 {
		return nil, nil, fmt.Errorf("sample count %d exceeds payload capacity", n)
	}
	t0, sz := binary.Varint(payload)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("bad first-timestamp varint")
	}
	payload = payload[sz:]
	if len(payload) < 8 {
		return nil, nil, fmt.Errorf("truncated first value")
	}
	v0 := math.Float64frombits(binary.LittleEndian.Uint64(payload))
	ts := make([]int64, 1, n)
	vs := make([]float64, 1, n)
	ts[0], vs[0] = t0, v0
	r := bitReader{buf: payload[8:]}
	prevT, prevDelta := t0, int64(0)
	prevV := math.Float64bits(v0)
	var winLZ, winTZ uint
	haveWin := false
	for uint64(len(ts)) < n {
		var dod int64
		bit, err := r.readBits(1)
		if err != nil {
			return nil, nil, err
		}
		if bit == 1 {
			width := uint(0)
			for _, w := range []uint{7, 12, 32} {
				next, err := r.readBits(1)
				if err != nil {
					return nil, nil, err
				}
				if next == 0 {
					width = w
					break
				}
			}
			if width == 0 {
				width = 64
			}
			z, err := r.readBits(width)
			if err != nil {
				return nil, nil, err
			}
			dod = unzigzag(z)
		}
		prevDelta += dod
		prevT += prevDelta
		bit, err = r.readBits(1)
		if err != nil {
			return nil, nil, err
		}
		cur := prevV
		if bit == 1 {
			ctrl, err := r.readBits(1)
			if err != nil {
				return nil, nil, err
			}
			if ctrl == 1 {
				lz, err := r.readBits(5)
				if err != nil {
					return nil, nil, err
				}
				sigM1, err := r.readBits(6)
				if err != nil {
					return nil, nil, err
				}
				sig := uint(sigM1) + 1
				if uint(lz)+sig > 64 {
					return nil, nil, fmt.Errorf("bad XOR window (lz=%d sig=%d)", lz, sig)
				}
				winLZ, winTZ, haveWin = uint(lz), 64-uint(lz)-sig, true
			} else if !haveWin {
				return nil, nil, fmt.Errorf("XOR window reuse before definition")
			}
			x, err := r.readBits(64 - winLZ - winTZ)
			if err != nil {
				return nil, nil, err
			}
			cur = prevV ^ (x << winTZ)
		}
		prevV = cur
		ts = append(ts, prevT)
		vs = append(vs, math.Float64frombits(cur))
	}
	return ts, vs, nil
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// bitWriter appends MSB-first bit runs to a byte buffer. The zero
// value (or one wrapping an existing byte-aligned buffer) is ready to
// use.
type bitWriter struct {
	buf  []byte
	free uint // unused low bits in the final byte
}

func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		if w.free == 0 {
			w.buf = append(w.buf, 0)
			w.free = 8
		}
		take := n
		if take > w.free {
			take = w.free
		}
		chunk := (v >> (n - take)) & (1<<take - 1)
		w.buf[len(w.buf)-1] |= byte(chunk << (w.free - take))
		w.free -= take
		n -= take
	}
}

// bitReader consumes MSB-first bit runs; reads past the end return
// io.ErrUnexpectedEOF rather than panicking.
type bitReader struct {
	buf []byte
	pos uint // absolute bit offset
}

func (r *bitReader) readBits(n uint) (uint64, error) {
	if uint(len(r.buf))*8-r.pos < n {
		return 0, io.ErrUnexpectedEOF
	}
	var v uint64
	for n > 0 {
		avail := 8 - r.pos&7
		take := n
		if take > avail {
			take = avail
		}
		chunk := uint64(r.buf[r.pos>>3]>>(avail-take)) & (1<<take - 1)
		v = v<<take | chunk
		r.pos += take
		n -= take
	}
	return v, nil
}
