package tsdb

import (
	"math"
	"testing"
	"time"

	"a4nn/internal/obs"
)

// FuzzDecodeBlocks holds the decoder's never-panic contract: arbitrary
// bytes — torn files, bit-flipped blocks, hostile length fields — must
// decode to (blocks, offset, error), never to a panic or a runaway
// allocation. This is the same contract the flight-recorder decoder
// keeps, and it is what makes reopening after a SIGKILL safe.
func FuzzDecodeBlocks(f *testing.F) {
	f.Add([]byte{})
	f.Add(headerBytes())
	f.Add([]byte("A4TSgarbage that is not a block"))

	well := headerBytes()
	well = appendBlock(well, "a4nn_train_epochs_total",
		encodeChunk([]int64{1000, 2000, 3000}, []float64{1, 2, 3}))
	well = appendBlock(well, `g{job="j1"}`,
		encodeChunk([]int64{1000, 1500, 9000}, []float64{0.5, math.Inf(1), math.NaN()}))
	f.Add(well)
	f.Add(well[:len(well)-5]) // torn tail
	f.Add(well[:12])          // torn frame
	mut := append([]byte(nil), well...)
	mut[len(mut)/2] ^= 0xff // CRC-detectable bit flip
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		blocks, good, err := DecodeBlocks(data)
		if good < 0 || good > len(data) {
			t.Fatalf("good offset %d outside [0,%d]", good, len(data))
		}
		if err == nil && len(data) >= len(fileMagic)+4 && good != len(data) {
			t.Fatalf("clean decode stopped at %d of %d", good, len(data))
		}
		for _, b := range blocks {
			if len(b.Times) != len(b.Values) || len(b.Times) == 0 {
				t.Fatalf("malformed decoded block %q: %d/%d", b.Series, len(b.Times), len(b.Values))
			}
		}
	})
}

func TestDecodeBlocksRejectsHostileLengths(t *testing.T) {
	base := headerBytes()
	cases := map[string][]byte{
		"empty":         {},
		"short header":  []byte("A4"),
		"bad magic":     []byte("NOPE\x01\x00\x00\x00"),
		"bad version":   []byte("A4TS\xff\x00\x00\x00"),
		"name overflow": append(append([]byte{}, base...), 0xff, 0xff, 0xff, 0xff),
		"zero name":     append(append([]byte{}, base...), 0, 0, 0, 0),
		"huge count": appendBlock(append([]byte{}, base...), "s",
			[]byte{0xff, 0xff, 0xff, 0x7f}),
	}
	for name, data := range cases {
		blocks, _, err := DecodeBlocks(data)
		if err == nil {
			t.Errorf("%s: no error", name)
		}
		if len(blocks) != 0 {
			t.Errorf("%s: decoded %d blocks from garbage", name, len(blocks))
		}
	}
}

// BenchmarkDisabledHistory proves the -history-off path is free: a nil
// sampler's SampleNow and a nil DB's Append are a single nil-check
// branch each, so every run that never asks for history pays zero
// allocations on the sample path. Gated at 0 allocs/op by
// scripts/benchgate.sh.
func BenchmarkDisabledHistory(b *testing.B) {
	var s *Sampler
	var db *DB
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleNow()
		db.Append("a4nn_train_epochs_total", int64(i), 1)
	}
}

// BenchmarkSampleNow measures the enabled sample path over a registry
// of realistic size (informational; history is off the hot path — it
// runs on its own goroutine every few seconds).
func BenchmarkSampleNow(b *testing.B) {
	dir := b.TempDir()
	db, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	reg := obs.NewRegistry()
	for _, n := range []string{"a", "b", "c", "d"} {
		reg.Counter("a4nn_" + n + "_total").Inc()
		reg.Gauge("a4nn_" + n + "_gauge").Set(1)
		reg.Histogram("a4nn_"+n+"_seconds", obs.SecondsBuckets).Observe(1)
	}
	s := NewSampler(db, reg, time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleNow()
	}
}
