package tsdb

import (
	"errors"
	"os"
	"sort"
	"time"
)

// ErrNoSeries is returned by Query for a series the store has never
// seen (HTTP handlers map it to 404).
var ErrNoSeries = errors.New("tsdb: unknown series")

// Point is one query-result sample. Gap marks a point separated from
// its predecessor by at least one empty step (raw queries: by more
// than 4× the median sample spacing) — the query-side record of a
// crash, a pause, or retention-trimmed history.
type Point struct {
	T   int64   `json:"t"` // unix milliseconds (bucket start when stepped)
	V   float64 `json:"v"`
	Gap bool    `json:"gap,omitempty"`
}

// Result is one series' query response.
type Result struct {
	Series string  `json:"series"`
	StepMS int64   `json:"step_ms,omitempty"`
	Points []Point `json:"points"`
}

// SeriesInfo summarises one stored series.
type SeriesInfo struct {
	Name    string `json:"name"`
	Samples int    `json:"samples"`
	MinT    int64  `json:"min_t"`
	MaxT    int64  `json:"max_t"`
}

// Query returns the samples of a series inside [fromMS, toMS] (unix
// milliseconds; from ≤ 0 means the beginning of the series, to ≤ 0
// means its end). stepMS > 0 downsamples to step-aligned buckets, each
// the mean of its raw samples; empty buckets are elided and the next
// point is gap-annotated instead, so a killed-and-resumed run reads as
// one monotone series with an explicit hole.
func (db *DB) Query(series string, fromMS, toMS, stepMS int64) (Result, error) {
	res := Result{Series: series}
	if stepMS > 0 {
		res.StepMS = stepMS
	}
	if db == nil {
		return res, ErrNoSeries
	}
	db.mu.Lock()
	s := db.series[series]
	if s == nil {
		db.mu.Unlock()
		return res, ErrNoSeries
	}
	ts, vs := window(s, fromMS, toMS)
	db.mu.Unlock()
	if len(ts) == 0 {
		return res, nil
	}
	if stepMS <= 0 {
		res.Points = rawPoints(ts, vs)
		return res, nil
	}
	var lastBucket int64
	for i := 0; i < len(ts); {
		b := ts[i] - floorMod(ts[i], stepMS)
		sum, n := 0.0, 0
		for i < len(ts) && ts[i] < b+stepMS {
			sum += vs[i]
			n++
			i++
		}
		p := Point{T: b, V: sum / float64(n)}
		if len(res.Points) > 0 && b-lastBucket > stepMS {
			p.Gap = true
		}
		lastBucket = b
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// rawPoints copies samples verbatim and gap-annotates any spacing over
// 4× the median inter-sample delta.
func rawPoints(ts []int64, vs []float64) []Point {
	pts := make([]Point, len(ts))
	var deltas []int64
	for i := range ts {
		pts[i] = Point{T: ts[i], V: vs[i]}
		if i > 0 {
			deltas = append(deltas, ts[i]-ts[i-1])
		}
	}
	if len(deltas) == 0 {
		return pts
	}
	sorted := append([]int64(nil), deltas...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	if median <= 0 {
		return pts
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].T-pts[i-1].T > 4*median {
			pts[i].Gap = true
		}
	}
	return pts
}

// window copies the in-range slice of a series (caller holds db.mu).
func window(s *memSeries, fromMS, toMS int64) ([]int64, []float64) {
	lo := 0
	if fromMS > 0 {
		lo = sort.Search(len(s.ts), func(i int) bool { return s.ts[i] >= fromMS })
	}
	hi := len(s.ts)
	if toMS > 0 {
		hi = sort.Search(len(s.ts), func(i int) bool { return s.ts[i] > toMS })
	}
	if lo >= hi {
		return nil, nil
	}
	return append([]int64(nil), s.ts[lo:hi]...), append([]float64(nil), s.vs[lo:hi]...)
}

// Series lists every stored series, sorted by name.
func (db *DB) Series() []SeriesInfo {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	infos := make([]SeriesInfo, 0, len(db.series))
	for _, name := range db.sortedNamesLocked() {
		s := db.series[name]
		info := SeriesInfo{Name: name, Samples: len(s.ts)}
		if len(s.ts) > 0 {
			info.MinT, info.MaxT = s.ts[0], s.ts[len(s.ts)-1]
		}
		infos = append(infos, info)
	}
	return infos
}

// Bounds returns the store-wide sample time range (zeroes when empty).
func (db *DB) Bounds() (minT, maxT int64) {
	for _, info := range db.Series() {
		if info.Samples == 0 {
			continue
		}
		if minT == 0 || info.MinT < minT {
			minT = info.MinT
		}
		if info.MaxT > maxT {
			maxT = info.MaxT
		}
	}
	return minT, maxT
}

// Mean reports the mean and sample count of a series over [fromMS,
// toMS]. Its signature satisfies the health engine's regression
// QueryFunc, which is how cross-run baselines are checked without
// internal/health importing this package. Nil-safe and unknown-series
// safe: both report zero samples.
func (db *DB) Mean(series string, fromMS, toMS int64) (float64, int) {
	if db == nil {
		return 0, 0
	}
	res, err := db.Query(series, fromMS, toMS, 0)
	if err != nil || len(res.Points) == 0 {
		return 0, 0
	}
	sum := 0.0
	for _, p := range res.Points {
		sum += p.V
	}
	return sum / float64(len(res.Points)), len(res.Points)
}

// Retention bounds a store's on-disk history.
type Retention struct {
	// MaxAge drops samples older than now-MaxAge entirely (0 keeps
	// everything).
	MaxAge time.Duration
	// DownsampleAfter replaces samples older than now-DownsampleAfter
	// with per-DownsampleStep bucket means (0 never downsamples).
	DownsampleAfter time.Duration
	// DownsampleStep is the aged-bucket width (default one minute).
	DownsampleStep time.Duration
}

// Compact applies a retention policy and rewrites the store atomically
// (temp file + rename, the observer's FlushTo discipline), then
// reopens the append handle so sampling continues uninterrupted.
func (db *DB) Compact(nowMS int64, pol Retention) error {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return errors.New("tsdb: compact on closed store")
	}
	if db.f == nil {
		return errors.New("tsdb: compact on read-only store")
	}
	step := pol.DownsampleStep.Milliseconds()
	if step <= 0 {
		step = time.Minute.Milliseconds()
	}
	for _, s := range db.series {
		ts, vs := s.ts, s.vs
		if pol.MaxAge > 0 {
			cut := nowMS - pol.MaxAge.Milliseconds()
			lo := sort.Search(len(ts), func(i int) bool { return ts[i] >= cut })
			ts, vs = ts[lo:], vs[lo:]
		}
		if pol.DownsampleAfter > 0 {
			aged := nowMS - pol.DownsampleAfter.Milliseconds()
			split := sort.Search(len(ts), func(i int) bool { return ts[i] >= aged })
			dts, dvs := downsample(ts[:split], vs[:split], step)
			ts = append(dts, ts[split:]...)
			vs = append(dvs, vs[split:]...)
		}
		s.ts = append([]int64(nil), ts...)
		s.vs = append([]float64(nil), vs...)
		s.persisted = 0
	}
	for name, s := range db.series {
		if len(s.ts) == 0 {
			delete(db.series, name)
		}
	}
	buf := headerBytes()
	for _, name := range db.sortedNamesLocked() {
		s := db.series[name]
		for lo := 0; lo < len(s.ts); lo += maxChunkSamples {
			hi := lo + maxChunkSamples
			if hi > len(s.ts) {
				hi = len(s.ts)
			}
			buf = appendBlock(buf, name, encodeChunk(s.ts[lo:hi], s.vs[lo:hi]))
		}
		s.persisted = len(s.ts)
	}
	tmp := db.path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, db.path); err != nil {
		os.Remove(tmp)
		return err
	}
	old := db.f
	f, err := os.OpenFile(db.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	db.f = f
	return old.Close()
}

// downsample collapses samples into step-aligned bucket means.
func downsample(ts []int64, vs []float64, stepMS int64) ([]int64, []float64) {
	var ots []int64
	var ovs []float64
	for i := 0; i < len(ts); {
		b := ts[i] - floorMod(ts[i], stepMS)
		sum, n := 0.0, 0
		for i < len(ts) && ts[i] < b+stepMS {
			sum += vs[i]
			n++
			i++
		}
		ots = append(ots, b)
		ovs = append(ovs, sum/float64(n))
	}
	return ots, ovs
}

// floorMod is a non-negative modulus (timestamps are positive in
// practice, but bucket alignment must not break on a negative input).
func floorMod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
