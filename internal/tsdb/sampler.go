package tsdb

import (
	"sync"
	"time"

	"a4nn/internal/obs"
)

// flushEveryTicks bounds crash loss: every 8th sample the DB seals all
// buffered tails and fsyncs, so a SIGKILL costs at most 8 intervals of
// history per series (plus whatever the interval itself hides).
const flushEveryTicks = 8

// compactEveryTicks is how often a retention policy (when set) is
// applied — rare, because Compact rewrites the file.
const compactEveryTicks = 720

// Sampler periodically walks an obs.Registry and appends every series
// to a DB. A nil *Sampler is a valid disabled sampler: SampleNow and
// Close are one-branch no-ops, keeping the -history-off path free.
type Sampler struct {
	db       *DB
	reg      *obs.Registry
	interval time.Duration
	pre      func()
	retain   Retention
	mu       sync.Mutex
	stop     chan struct{}
	done     chan struct{}
}

// NewSampler binds a registry to a store. interval ≤ 0 selects 5s.
func NewSampler(db *DB, reg *obs.Registry, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	return &Sampler{db: db, reg: reg, interval: interval}
}

// SetPreSample installs a hook that runs before every sample pass.
// a4nn-serve uses it to refresh the fleet gauges so slot history is
// captured even when no job event happens to fire near the tick.
func (s *Sampler) SetPreSample(fn func()) {
	if s == nil {
		return
	}
	s.pre = fn
}

// SetRetention installs a retention policy, applied periodically from
// the sampling goroutine. Call before Start.
func (s *Sampler) SetRetention(r Retention) {
	if s == nil {
		return
	}
	s.retain = r
}

// Start launches the sampling goroutine. Call at most once.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop(s.stop, s.done)
}

func (s *Sampler) loop(stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	n := 0
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			s.SampleNow()
			n++
			if n%flushEveryTicks == 0 {
				s.db.Flush()
			}
			if n%compactEveryTicks == 0 && (s.retain.MaxAge > 0 || s.retain.DownsampleAfter > 0) {
				s.db.Compact(time.Now().UnixMilli(), s.retain)
			}
		}
	}
}

// SampleNow takes one sample pass immediately: every counter and gauge
// by value, every histogram expanded to _count, _sum and _p99 series,
// root and per-job scopes alike. Nil-safe.
func (s *Sampler) SampleNow() {
	if s == nil {
		return
	}
	if s.pre != nil {
		s.pre()
	}
	t := time.Now().UnixMilli()
	s.reg.VisitSeries(func(name string, v float64) {
		s.db.Append(name, t, v)
	})
}

// Close stops the sampling goroutine (waiting for it to exit), takes a
// final sample so short runs are not invisible, and flushes the store.
// It does not close the DB — the owner does, after any final queries.
func (s *Sampler) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	s.SampleNow()
	s.db.Flush()
}
