package tsdb

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// SeriesFile is the on-disk name of a run's series store inside its
// commons (or job) directory, next to events.jsonl and alerts.jsonl.
const SeriesFile = "series.a4ts"

// DefaultSealSamples is how many samples a series buffers before its
// run is compressed and appended as one CRC-framed block. Small on
// purpose: at the default 5s sampling interval a block seals every
// ~80s, bounding what a SIGKILL can lose to one short, queryable gap.
const DefaultSealSamples = 16

// openDBs counts writable DBs that have been opened and not yet
// closed, mirroring obs.ArmedRecorders: the job-manager leak test
// asserts it returns to zero after a hundred job lifecycles.
var openDBs atomic.Int64

// OpenDBs reports the number of currently open writable DBs.
func OpenDBs() int { return int(openDBs.Load()) }

// Options tunes a writable store.
type Options struct {
	// SealSamples overrides DefaultSealSamples (tests use tiny values
	// to force frequent blocks).
	SealSamples int
}

// memSeries holds one series' full sample history in memory (the disk
// file is the durability story; memory is the query index — at the
// default interval a multi-hour run is a few thousand points per
// series). Samples [0:persisted) are sealed on disk.
type memSeries struct {
	ts        []int64
	vs        []float64
	persisted int
}

// DB is a single-file metrics time-series store. A nil *DB is a valid
// disabled store: Append and Close are no-ops costing one branch, so
// runs without -history pay nothing.
type DB struct {
	mu      sync.Mutex
	path    string
	f       *os.File // nil for read-only stores
	series  map[string]*memSeries
	seal    int
	werr    error // first append-path write error, surfaced by Flush/Close
	closed  bool
	counted bool
}

// Open opens (or creates) the writable series store in dir with
// default options.
func Open(dir string) (*DB, error) {
	return OpenFile(filepath.Join(dir, SeriesFile), Options{})
}

// OpenFile opens (or creates) a writable store at an explicit path.
// Reopening after a crash decodes every complete block and truncates a
// torn tail before appending resumes, so a killed run continues the
// same series file with at most one sampling gap.
func OpenFile(path string, o Options) (*DB, error) {
	seal := o.SealSamples
	if seal <= 0 {
		seal = DefaultSealSamples
	}
	db := &DB{path: path, series: make(map[string]*memSeries), seal: seal}
	data, err := os.ReadFile(path)
	fresh := errors.Is(err, fs.ErrNotExist) || (err == nil && len(data) == 0)
	if err != nil && !fresh {
		return nil, err
	}
	if fresh {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		if _, err := f.Write(headerBytes()); err != nil {
			f.Close()
			return nil, err
		}
		db.f = f
	} else {
		blocks, good, derr := DecodeBlocks(data)
		if derr != nil && good == 0 {
			// The header itself is unreadable: refuse to clobber what
			// might be someone else's file.
			return nil, fmt.Errorf("tsdb: %s: %w", path, derr)
		}
		db.load(blocks)
		if good < len(data) {
			if err := os.Truncate(path, int64(good)); err != nil {
				return nil, err
			}
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		db.f = f
	}
	openDBs.Add(1)
	db.counted = true
	return db, nil
}

// OpenRead opens the series store in dir read-only: no file handle is
// held, torn tails are tolerated silently, and the result does not
// count toward OpenDBs. Used by a4nn-analyze and by the web UI when
// serving history for a job that is no longer running.
func OpenRead(dir string) (*DB, error) {
	return OpenReadFile(filepath.Join(dir, SeriesFile))
}

// OpenReadFile is OpenRead with an explicit file path.
func OpenReadFile(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	blocks, good, derr := DecodeBlocks(data)
	if derr != nil && good == 0 {
		return nil, fmt.Errorf("tsdb: %s: %w", path, derr)
	}
	db := &DB{path: path, series: make(map[string]*memSeries)}
	db.load(blocks)
	return db, nil
}

// load folds decoded blocks into the in-memory index. A single writer
// seals blocks in time order, so per-series concatenation preserves
// sample order; the append-path monotonicity guard keeps it that way.
func (db *DB) load(blocks []Block) {
	for _, b := range blocks {
		s := db.series[b.Series]
		if s == nil {
			s = &memSeries{}
			db.series[b.Series] = s
		}
		for i, t := range b.Times {
			if len(s.ts) > 0 && t <= s.ts[len(s.ts)-1] {
				continue
			}
			s.ts = append(s.ts, t)
			s.vs = append(s.vs, b.Values[i])
		}
		s.persisted = len(s.ts)
	}
}

// Append records one sample. Timestamps are unix milliseconds and must
// be strictly increasing per series; out-of-order samples (e.g. a
// clock step backwards across a crash/restart) are dropped rather than
// corrupting the sorted index. Nil-safe; write errors are deferred to
// Flush/Close because the sample path is best-effort.
func (db *DB) Append(name string, tMS int64, v float64) {
	if db == nil {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed || name == "" || len(name) > maxSeriesName {
		return
	}
	s := db.series[name]
	if s == nil {
		s = &memSeries{}
		db.series[name] = s
	}
	if len(s.ts) > 0 && tMS <= s.ts[len(s.ts)-1] {
		return
	}
	s.ts = append(s.ts, tMS)
	s.vs = append(s.vs, v)
	if db.f != nil && len(s.ts)-s.persisted >= db.seal {
		if err := db.sealLocked(name, s); err != nil && db.werr == nil {
			db.werr = err
		}
	}
}

// sealLocked compresses a series' unpersisted tail into one framed
// block and appends it. O_APPEND keeps the write atomic with respect
// to a concurrent reader of the file; a SIGKILL mid-write tears only
// this block, which reopen truncates.
func (db *DB) sealLocked(name string, s *memSeries) error {
	if db.f == nil || s.persisted == len(s.ts) {
		return nil
	}
	payload := encodeChunk(s.ts[s.persisted:], s.vs[s.persisted:])
	if _, err := db.f.Write(appendBlock(nil, name, payload)); err != nil {
		return err
	}
	s.persisted = len(s.ts)
	return nil
}

// Flush seals every series' buffered tail and syncs the file.
func (db *DB) Flush() error {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.flushLocked()
}

func (db *DB) flushLocked() error {
	if db.closed || db.f == nil {
		return db.werr
	}
	for _, name := range db.sortedNamesLocked() {
		if err := db.sealLocked(name, db.series[name]); err != nil && db.werr == nil {
			db.werr = err
		}
	}
	if err := db.f.Sync(); err != nil && db.werr == nil {
		db.werr = err
	}
	return db.werr
}

// Close flushes and closes the store. Idempotent and nil-safe.
func (db *DB) Close() error {
	if db == nil {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return db.werr
	}
	err := db.flushLocked()
	if db.f != nil {
		if cerr := db.f.Close(); err == nil {
			err = cerr
		}
	}
	db.closed = true
	if db.counted {
		db.counted = false
		openDBs.Add(-1)
	}
	return err
}

// Path returns the backing file path.
func (db *DB) Path() string {
	if db == nil {
		return ""
	}
	return db.path
}

func (db *DB) sortedNamesLocked() []string {
	names := make([]string, 0, len(db.series))
	for name := range db.series {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
