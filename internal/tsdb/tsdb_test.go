package tsdb

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"a4nn/internal/obs"
)

func TestChunkRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := map[string]struct {
		ts []int64
		vs []float64
	}{
		"single":   {[]int64{1700000000000}, []float64{42.5}},
		"constant": {[]int64{1000, 2000, 3000, 4000}, []float64{5, 5, 5, 5}},
		"specials": {
			[]int64{10, 20, 25, 1 << 40, 1<<40 + 1},
			[]float64{0, math.NaN(), math.Inf(1), math.Inf(-1), -0.0},
		},
	}
	ts := make([]int64, 500)
	vs := make([]float64, 500)
	cur := int64(1_700_000_000_000)
	for i := range ts {
		cur += 4000 + rng.Int63n(2500) - 1250
		ts[i] = cur
		vs[i] = rng.NormFloat64() * 1e6
	}
	cases["walk"] = struct {
		ts []int64
		vs []float64
	}{ts, vs}

	for name, tc := range cases {
		payload := encodeChunk(tc.ts, tc.vs)
		gotT, gotV, err := decodeChunk(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if len(gotT) != len(tc.ts) {
			t.Fatalf("%s: %d samples, want %d", name, len(gotT), len(tc.ts))
		}
		for i := range gotT {
			if gotT[i] != tc.ts[i] {
				t.Fatalf("%s: t[%d] = %d, want %d", name, i, gotT[i], tc.ts[i])
			}
			if math.Float64bits(gotV[i]) != math.Float64bits(tc.vs[i]) {
				t.Fatalf("%s: v[%d] = %v, want %v", name, i, gotV[i], tc.vs[i])
			}
		}
	}
}

func TestOpenAppendReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenFile(filepath.Join(dir, SeriesFile), Options{SealSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	if OpenDBs() == 0 {
		t.Fatal("open writable DB not counted")
	}
	for i := 0; i < 10; i++ {
		db.Append("a", int64(1000+i*100), float64(i))
		db.Append("b", int64(1000+i*100), float64(-i))
	}
	db.Append("a", 900, 99) // out of order: dropped
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if OpenDBs() != 0 {
		t.Fatalf("OpenDBs = %d after close", OpenDBs())
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Query("a", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 10 {
		t.Fatalf("reopened series a has %d points, want 10", len(res.Points))
	}
	for i, p := range res.Points {
		if p.T != int64(1000+i*100) || p.V != float64(i) {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
	// Appending continues the same file.
	db2.Append("a", 5000, 10)
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := db3.Query("a", 0, 0, 0); len(res.Points) != 11 {
		t.Fatalf("after reopen+append: %d points, want 11", len(res.Points))
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SeriesFile)
	db, err := OpenFile(path, Options{SealSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ { // 3 sealed blocks of 4
		db.Append("s", int64(1000+i*50), float64(i))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blocks, _, derr := DecodeBlocks(data)
	if derr != nil || len(blocks) != 3 {
		t.Fatalf("pre-truncate: %d blocks, err %v", len(blocks), derr)
	}
	// Tear the final block mid-payload, the way a SIGKILL mid-append
	// would.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenFile(path, Options{SealSamples: 4})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	res, err := db2.Query("s", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 {
		t.Fatalf("recovered %d samples, want the 8 from complete blocks", len(res.Points))
	}
	// The torn tail was truncated, so appends produce a clean file.
	db2.Append("s", 9000, 99)
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeBlocks(data); err != nil {
		t.Fatalf("file still torn after recovery+append: %v", err)
	}
}

func TestQueryStepAndGaps(t *testing.T) {
	db := &DB{series: make(map[string]*memSeries)}
	s := &memSeries{}
	db.series["x"] = s
	// Two clusters of samples with a hole between 3000 and 9000.
	for _, t0 := range []int64{1000, 1500, 2000, 2500, 9000, 9500} {
		s.ts = append(s.ts, t0)
		s.vs = append(s.vs, float64(t0))
	}
	res, err := db.Query("x", 0, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := []Point{
		{T: 1000, V: 1250},
		{T: 2000, V: 2250},
		{T: 9000, V: 9250, Gap: true},
	}
	if len(res.Points) != len(want) {
		t.Fatalf("points = %+v", res.Points)
	}
	for i, p := range res.Points {
		if p != want[i] {
			t.Fatalf("point %d = %+v, want %+v", i, p, want[i])
		}
	}
	// Raw query gap-annotates the same hole.
	res, err = db.Query("x", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	gaps := 0
	for _, p := range res.Points {
		if p.Gap {
			gaps++
		}
	}
	if gaps != 1 {
		t.Fatalf("raw query marked %d gaps, want 1: %+v", gaps, res.Points)
	}
	// Window restriction.
	res, err = db.Query("x", 1500, 2500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("windowed query: %+v", res.Points)
	}
	if _, err := db.Query("missing", 0, 0, 0); err != ErrNoSeries {
		t.Fatalf("unknown series error = %v", err)
	}
}

func TestMeanAndBounds(t *testing.T) {
	db := &DB{series: make(map[string]*memSeries)}
	db.series["m"] = &memSeries{ts: []int64{10, 20, 30}, vs: []float64{1, 2, 6}}
	mean, n := db.Mean("m", 0, 0)
	if n != 3 || mean != 3 {
		t.Fatalf("mean = %v over %d", mean, n)
	}
	mean, n = db.Mean("m", 15, 0)
	if n != 2 || mean != 4 {
		t.Fatalf("windowed mean = %v over %d", mean, n)
	}
	if _, n := db.Mean("nope", 0, 0); n != 0 {
		t.Fatalf("unknown series mean reported %d samples", n)
	}
	var nilDB *DB
	if _, n := nilDB.Mean("m", 0, 0); n != 0 {
		t.Fatal("nil DB mean reported samples")
	}
	lo, hi := db.Bounds()
	if lo != 10 || hi != 30 {
		t.Fatalf("bounds = %d..%d", lo, hi)
	}
}

func TestCompactRetentionAndDownsample(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenFile(filepath.Join(dir, SeriesFile), Options{SealSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	now := int64(1_000_000_000)
	// 100 samples, one per second, ending at now.
	for i := 0; i < 100; i++ {
		db.Append("c", now-int64(100-i)*1000, float64(i))
	}
	pol := Retention{
		MaxAge:          80 * time.Second,
		DownsampleAfter: 40 * time.Second,
		DownsampleStep:  10 * time.Second,
	}
	if err := db.Compact(now, pol); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("c", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 40 recent raw samples survive; the 40s..80s band collapses to
	// ~4 ten-second buckets.
	raw := 0
	for _, p := range res.Points {
		if p.T >= now-40*1000 {
			raw++
		}
	}
	if raw != 40 {
		t.Fatalf("recent raw samples = %d, want 40", raw)
	}
	if aged := len(res.Points) - raw; aged < 4 || aged > 5 {
		t.Fatalf("aged buckets = %d, want ~4", aged)
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].T <= res.Points[i-1].T {
			t.Fatalf("compacted series not monotone at %d: %+v", i, res.Points)
		}
	}
	// Appends continue after the rewrite, and reopen sees everything.
	db.Append("c", now+1000, 999)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := db2.Query("c", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Points) != len(res.Points)+1 {
		t.Fatalf("reopen after compact: %d points, want %d", len(res2.Points), len(res.Points)+1)
	}
}

func TestSamplerVisitsRegistry(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	reg := obs.NewRegistry()
	reg.Counter("jobs_total").Add(3)
	reg.Gauge("depth").Set(1.5)
	reg.Histogram("lat", []float64{1, 10}).Observe(2)
	reg.Scope("job", "j1").Gauge("depth").Set(7)

	pres := 0
	s := NewSampler(db, reg, time.Hour)
	s.SetPreSample(func() { pres++ })
	s.SampleNow()
	time.Sleep(2 * time.Millisecond) // distinct sample timestamps
	s.SampleNow()
	s.Close()
	if pres != 3 { // two explicit + one final on Close
		t.Fatalf("pre-sample hook ran %d times, want 3", pres)
	}
	for _, name := range []string{
		"jobs_total", "depth", "lat_count", "lat_sum", "lat_p99", `depth{job="j1"}`,
	} {
		res, err := db.Query(name, 0, 0, 0)
		if err != nil {
			t.Fatalf("series %q missing: %v", name, err)
		}
		if len(res.Points) == 0 {
			t.Fatalf("series %q empty", name)
		}
	}
	mean, _ := db.Mean("jobs_total", 0, 0)
	if mean != 3 {
		t.Fatalf("jobs_total mean = %v", mean)
	}
	if mean, _ := db.Mean(`depth{job="j1"}`, 0, 0); mean != 7 {
		t.Fatalf("scoped gauge mean = %v", mean)
	}
}

func TestSamplerGoroutineLifecycle(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	reg.Gauge("g").Set(1)
	s := NewSampler(db, reg, time.Millisecond)
	s.Start()
	time.Sleep(20 * time.Millisecond)
	s.Close()
	s.Close() // idempotent
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("g", 0, 0, 0)
	if err != nil || len(res.Points) == 0 {
		t.Fatalf("ticker samples missing: %v %+v", err, res)
	}
}

func TestNilDisabledStore(t *testing.T) {
	var db *DB
	var s *Sampler
	db.Append("x", 1, 1)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if db.Series() != nil {
		t.Fatal("nil DB listed series")
	}
	s.SampleNow()
	s.Start()
	s.Close()
	s.SetPreSample(func() {})
	s.SetRetention(Retention{})
}
