package webui

import (
	"sync"
	"time"
)

// APICacheTTL is how long /api/summary and /api/pareto responses are
// reused before the store is consulted again. Both endpoints re-read
// and aggregate every record trail on disk; under a live dashboard
// refreshing them per request would turn O(records) disk work into a
// per-client cost.
const APICacheTTL = 2 * time.Second

// ttlCache memoises keyed computations for a fixed TTL. Errors are not
// cached, so a transient store failure is retried on the next request.
type ttlCache struct {
	mu      sync.Mutex
	ttl     time.Duration
	now     func() time.Time // injectable for tests
	entries map[string]cacheEntry
}

type cacheEntry struct {
	val any
	at  time.Time
}

func newTTLCache(ttl time.Duration) *ttlCache {
	return &ttlCache{
		ttl:     ttl,
		now:     time.Now,
		entries: make(map[string]cacheEntry),
	}
}

// get returns the cached value for key, calling fill (and caching its
// result) when the entry is missing or older than the TTL.
func (c *ttlCache) get(key string, fill func() (any, error)) (any, error) {
	c.mu.Lock()
	ent, ok := c.entries[key]
	if ok && c.now().Sub(ent.at) < c.ttl {
		c.mu.Unlock()
		return ent.val, nil
	}
	c.mu.Unlock()
	// Fill outside the lock: a slow store read must not serialise every
	// other endpoint behind it. Concurrent misses may fill twice; the
	// last write wins, which is harmless for idempotent reads.
	val, err := fill()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.entries[key] = cacheEntry{val: val, at: c.now()}
	c.mu.Unlock()
	return val, nil
}
