package webui

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"a4nn/internal/commons"
	"a4nn/internal/lineage"
)

func newHTTPServer(t *testing.T, srv *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func putThirdRecord(t *testing.T, store *commons.Store) {
	t.Helper()
	r := &lineage.Record{ID: "m3", Genome: "1111111|1111111|1111111", NodesPerPhase: 4,
		Beam: "low", FinalFitness: 80, FLOPs: 2e8,
		Epochs: []lineage.EpochEntry{{Epoch: 1, ValAccuracy: 80, SimSeconds: 3}}}
	r.CreatedAt = time.Now()
	if err := store.PutRecord(r); err != nil {
		t.Fatal(err)
	}
}

func TestTTLCacheFillsOncePerWindow(t *testing.T) {
	c := newTTLCache(time.Second)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	fills := 0
	fill := func() (any, error) { fills++; return fills, nil }

	for i := 0; i < 5; i++ {
		v, err := c.get("k", fill)
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != 1 {
			t.Fatalf("get %d returned %v, want 1", i, v)
		}
	}
	if fills != 1 {
		t.Fatalf("fills = %d within TTL, want 1", fills)
	}

	now = now.Add(2 * time.Second)
	v, err := c.get("k", fill)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 2 || fills != 2 {
		t.Fatalf("after TTL: v=%v fills=%d, want 2, 2", v, fills)
	}

	// Distinct keys fill independently.
	if _, err := c.get("other", fill); err != nil {
		t.Fatal(err)
	}
	if fills != 3 {
		t.Fatalf("fills = %d after new key, want 3", fills)
	}
}

// TestSummaryHitsStoreOncePerWindow drives the real handler: within
// one TTL window the store is read once, so a record added mid-window
// is invisible until the window expires.
func TestSummaryHitsStoreOncePerWindow(t *testing.T) {
	store := testStore(t)
	srv, err := New(store)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(5000, 0)
	srv.cache.now = func() time.Time { return now }
	ts := newHTTPServer(t, srv)

	code, body := get(t, ts.URL+"/api/summary")
	if code != 200 || !strings.Contains(body, `"Records": 2`) {
		t.Fatalf("first summary: %d\n%s", code, body)
	}

	// New record lands mid-window: the cached summary still serves.
	putThirdRecord(t, store)
	if _, body := get(t, ts.URL+"/api/summary"); !strings.Contains(body, `"Records": 2`) {
		t.Fatalf("summary re-read store within TTL:\n%s", body)
	}

	now = now.Add(APICacheTTL + time.Second)
	if _, body := get(t, ts.URL+"/api/summary"); !strings.Contains(body, `"Records": 3`) {
		t.Fatalf("summary stale after TTL:\n%s", body)
	}
}

func TestParetoCachedPerBeam(t *testing.T) {
	srv, err := New(testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(7000, 0)
	srv.cache.now = func() time.Time { return now }
	ts := newHTTPServer(t, srv)

	// Different beams are distinct cache keys with distinct contents.
	if _, body := get(t, ts.URL+"/api/pareto?beam=low"); !strings.Contains(body, "m1") {
		t.Fatalf("low beam pareto:\n%s", body)
	}
	if _, body := get(t, ts.URL+"/api/pareto?beam=high"); !strings.Contains(body, "m2") {
		t.Fatalf("high beam pareto:\n%s", body)
	}
}
