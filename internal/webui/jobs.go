package webui

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"

	"a4nn/internal/health"
	"a4nn/internal/jobs"
	"a4nn/internal/obs"
	"a4nn/internal/sched"
)

// SetJobs mounts the job-service API backed by a running manager,
// turning the server from a results viewer into the submission
// endpoint of a multi-tenant search service:
//
//	POST   /api/jobs                submit a search (JSON jobs.Config)
//	GET    /api/jobs                all job statuses
//	GET    /api/jobs/{id}           one job's status
//	DELETE /api/jobs/{id}           cancel
//	POST   /api/jobs/{id}/pause     stop granting generations
//	POST   /api/jobs/{id}/resume    re-enable a paused job
//	POST   /api/jobs/{id}/priority  change fair-share weight {"priority":n}
//	GET    /api/jobs/{id}/events    the job's SSE stream
//	GET    /api/jobs/{id}/healthz   the job's health engine status
//	GET    /api/jobs/{id}/alerts    the job's active/resolved alerts
//	GET    /api/jobs/{id}/metrics   the job's own metrics scope (Prometheus text)
//	GET    /api/jobs/{id}/query     range query over the job's series history
//	GET    /api/jobs/{id}/series    the job's stored-series catalogue
//	GET    /api/jobs/{id}/dashboard the live dashboard bound to this job
//	GET    /api/fleet               fleet + per-job aggregate view
//	GET    /api/fleet/metrics       fair-share audit as Prometheus gauges
//	GET    /fleet                   the fleet dashboard page
//
// Same contract as SetObserver: at most once, before serving; nil or
// repeat is a no-op.
func (s *Server) SetJobs(m *jobs.Manager) {
	if m == nil || s.jobsOn {
		return
	}
	s.jobsOn = true
	s.jobs = m
	s.mux.HandleFunc("POST /api/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /api/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /api/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /api/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("POST /api/jobs/{id}/pause", s.handleJobPause)
	s.mux.HandleFunc("POST /api/jobs/{id}/resume", s.handleJobResume)
	s.mux.HandleFunc("POST /api/jobs/{id}/priority", s.handleJobPriority)
	s.mux.HandleFunc("GET /api/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /api/jobs/{id}/healthz", s.handleJobHealthz)
	s.mux.HandleFunc("GET /api/jobs/{id}/alerts", s.handleJobAlerts)
	s.mux.HandleFunc("GET /api/jobs/{id}/metrics", s.handleJobMetrics)
	s.mux.HandleFunc("GET /api/jobs/{id}/query", s.handleJobQuery)
	s.mux.HandleFunc("GET /api/jobs/{id}/series", s.handleJobSeries)
	s.mux.HandleFunc("GET /api/jobs/{id}/dashboard", s.handleJobDashboard)
	s.mux.HandleFunc("GET /api/fleet", s.handleFleet)
	s.mux.HandleFunc("GET /api/fleet/metrics", s.handleFleetMetrics)
	s.mux.HandleFunc("GET /fleet", s.handleFleetPage)
}

// jobError maps manager errors to HTTP statuses.
func jobError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, jobs.ErrUnknownJob):
		status = http.StatusNotFound
	case errors.Is(err, jobs.ErrDuplicateID), errors.Is(err, jobs.ErrTerminal):
		status = http.StatusConflict
	case errors.Is(err, jobs.ErrDraining):
		status = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), status)
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var jc jobs.Config
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jc); err != nil {
		http.Error(w, fmt.Sprintf("malformed job config: %v", err), http.StatusBadRequest)
		return
	}
	st, err := s.jobs.Submit(jc)
	if err != nil {
		jobError(w, err)
		return
	}
	w.Header().Set("Location", "/api/jobs/"+url.PathEscape(st.ID))
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, st)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.jobs.List())
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		jobError(w, err)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.jobs.Cancel(id); err != nil {
		jobError(w, err)
		return
	}
	st, err := s.jobs.Get(id)
	if err != nil {
		jobError(w, err)
		return
	}
	writeJSON(w, st)
}

func (s *Server) handleJobPause(w http.ResponseWriter, r *http.Request) {
	if err := s.jobs.Pause(r.PathValue("id")); err != nil {
		jobError(w, err)
		return
	}
	st, _ := s.jobs.Get(r.PathValue("id"))
	writeJSON(w, st)
}

func (s *Server) handleJobResume(w http.ResponseWriter, r *http.Request) {
	if err := s.jobs.ResumeJob(r.PathValue("id")); err != nil {
		jobError(w, err)
		return
	}
	st, _ := s.jobs.Get(r.PathValue("id"))
	writeJSON(w, st)
}

func (s *Server) handleJobPriority(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Priority int `json:"priority"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<10)).Decode(&body); err != nil {
		http.Error(w, fmt.Sprintf("malformed priority body: %v", err), http.StatusBadRequest)
		return
	}
	if err := s.jobs.SetPriority(r.PathValue("id"), body.Priority); err != nil {
		jobError(w, err)
		return
	}
	st, _ := s.jobs.Get(r.PathValue("id"))
	writeJSON(w, st)
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Journal(r.PathValue("id"))
	if err != nil {
		jobError(w, err)
		return
	}
	// EventsHandler turns a nil journal (job not yet started) into 503.
	EventsHandler(j).ServeHTTP(w, r)
}

func (s *Server) handleJobHealthz(w http.ResponseWriter, r *http.Request) {
	eng, err := s.jobs.HealthEngine(r.PathValue("id"))
	if err != nil {
		jobError(w, err)
		return
	}
	if eng == nil {
		http.Error(w, "health engine not started", http.StatusServiceUnavailable)
		return
	}
	health.HealthzHandler(eng).ServeHTTP(w, r)
}

func (s *Server) handleJobAlerts(w http.ResponseWriter, r *http.Request) {
	eng, err := s.jobs.HealthEngine(r.PathValue("id"))
	if err != nil {
		jobError(w, err)
		return
	}
	if eng == nil {
		http.Error(w, "health engine not started", http.StatusServiceUnavailable)
		return
	}
	health.AlertsHandler(eng).ServeHTTP(w, r)
}

// handleJobMetrics serves one job's metrics scope in Prometheus text
// format — undecorated series, exactly what the job's own observer
// registers. The job-labelled roll-up of the same series lives on the
// shared /metrics while the job is live; this endpoint keeps working
// after terminal state, because the job retains its scope even once
// the roll-up retires it.
func (s *Server) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	reg, err := s.jobs.JobRegistry(r.PathValue("id"))
	if err != nil {
		jobError(w, err)
		return
	}
	if reg == nil {
		http.Error(w, "job metrics not started", http.StatusServiceUnavailable)
		return
	}
	reg.MetricsHandler().ServeHTTP(w, r)
}

// handleJobQuery serves range queries over one job's series history.
// The manager resolves a live job to its writable store and a terminal
// job to a read-only reopen of the series file in its directory, so
// history outlives the job that recorded it.
func (s *Server) handleJobQuery(w http.ResponseWriter, r *http.Request) {
	db, err := s.jobs.JobHistory(r.PathValue("id"))
	if err != nil {
		jobError(w, err)
		return
	}
	serveQuery(w, r, db)
}

func (s *Server) handleJobSeries(w http.ResponseWriter, r *http.Request) {
	db, err := s.jobs.JobHistory(r.PathValue("id"))
	if err != nil {
		jobError(w, err)
		return
	}
	serveSeries(w, r, db)
}

// handleFleetMetrics exports the fleet's fair-share audit as Prometheus
// gauges: per job, the stride entitlement (weight over total weight)
// against the measured device-seconds share, plus the arbiter's slot
// occupancy. A divergence between the two shares is the scheduler
// failing its fairness contract — exactly the comparison an external
// alerting stack should watch. The registry is rebuilt per request from
// the fleet snapshot; cardinality is bounded by registered (live) jobs.
func (s *Server) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	fs := s.jobs.Fleet().Status()
	reg := obs.NewRegistry()
	reg.Gauge("a4nn_fleet_capacity_slots").Set(float64(fs.Capacity))
	reg.Gauge("a4nn_fleet_in_use_slots").Set(float64(fs.InUse))
	reg.Gauge("a4nn_fleet_waiting_jobs").Set(float64(fs.Waiting))
	for _, j := range fs.Jobs {
		// Job IDs are validated to [a-zA-Z0-9._-]+, safe inside a label.
		label := fmt.Sprintf("{job=%q}", j.ID)
		reg.Gauge("a4nn_fleet_entitled_share" + label).Set(j.EntitledShare)
		reg.Gauge("a4nn_fleet_measured_share" + label).Set(j.MeasuredShare)
		reg.Gauge("a4nn_fleet_slot_seconds" + label).Set(j.SlotSeconds)
		reg.Gauge("a4nn_fleet_wait_seconds" + label).Set(j.WaitSeconds)
		reg.Gauge("a4nn_fleet_held_slots" + label).Set(float64(j.HeldSlots))
	}
	reg.MetricsHandler().ServeHTTP(w, r)
}

func (s *Server) handleJobDashboard(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.jobs.Get(id); err != nil {
		jobError(w, err)
		return
	}
	prefix := "/api/jobs/" + url.PathEscape(id)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, dashboardPage(prefix+"/events", prefix+"/alerts",
		prefix+"/query", prefix+"/series"))
}

// jobHealthView summarises one job's health engine for the fleet view.
type jobHealthView struct {
	Status string `json:"status"`
	Active int    `json:"active"`
}

// fleetJobView joins one job's lifecycle status with its scheduling and
// health state for the aggregate fleet endpoint.
type fleetJobView struct {
	jobs.Status
	Fleet  *sched.FleetJobStatus `json:"fleet,omitempty"`
	Health *jobHealthView        `json:"health,omitempty"`
}

// fleetView is the GET /api/fleet payload: the arbiter snapshot plus
// every job's status, health, and share accounting.
type fleetView struct {
	Fleet    sched.FleetStatus `json:"fleet"`
	Draining bool              `json:"draining"`
	Jobs     []fleetJobView    `json:"jobs"`
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	fs := s.jobs.Fleet().Status()
	byID := make(map[string]*sched.FleetJobStatus, len(fs.Jobs))
	for i := range fs.Jobs {
		byID[fs.Jobs[i].ID] = &fs.Jobs[i]
	}
	view := fleetView{Fleet: fs, Draining: s.jobs.Draining()}
	sts := s.jobs.List()
	jobs.SortStatuses(sts)
	for _, st := range sts {
		jv := fleetJobView{Status: st, Fleet: byID[st.ID]}
		if eng, err := s.jobs.HealthEngine(st.ID); err == nil && eng != nil {
			jv.Health = &jobHealthView{Status: eng.Status().String(), Active: len(eng.ActiveAlerts())}
		}
		view.Jobs = append(view.Jobs, jv)
	}
	writeJSON(w, view)
}

func (s *Server) handleFleetPage(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, fleetHTML)
}

// fleetHTML is the fleet dashboard: one self-contained page polling
// /api/fleet, showing slot occupancy and a card per job — state,
// progress, fair-share accounting, health, and a link to the job's own
// live dashboard.
const fleetHTML = `<!DOCTYPE html>
<html><head><title>A4NN fleet</title>
<style>
body { font-family: monospace; margin: 1.5rem; background: #111; color: #ddd; }
h1 { font-size: 1.2rem; } a { color: #9cf; }
.muted { color: #777; font-size: .85rem; }
.bar { background: #333; height: .7rem; border-radius: 3px; overflow: hidden; margin: .15rem 0; }
.bar > div { background: #4c8; height: 100%; width: 0; }
.grid { display: grid; grid-template-columns: repeat(auto-fill, minmax(22rem, 1fr)); gap: 1rem; max-width: 80rem; }
.card { background: #1b1b1b; border: 1px solid #333; padding: .8rem 1rem; border-radius: 4px; }
.state { padding: 0 .4rem; border-radius: 3px; font-size: .8rem; }
.state.running { background: #253; color: #4c8; } .state.queued { background: #223; color: #9cf; }
.state.paused { background: #332b20; color: #ec5; } .state.completed { background: #234; color: #9cf; }
.state.failed, .state.canceled { background: #322; color: #e66; }
.health.ok { color: #4c8; } .health.degraded { color: #ec5; } .health.critical { color: #e66; }
#slots { margin: .6rem 0 1rem; max-width: 30rem; }
#drain { color: #ec5; display: none; }
canvas { background: #161616; border: 1px solid #2a2a2a; width: 100%; display: none; }
</style></head><body>
<h1>A4NN fleet <span id="drain">· draining</span></h1>
<div id="slots"><span id="slotline" class="muted">loading…</span>
<div class="bar"><div id="slotbar"></div></div>
<canvas id="slothist" width="480" height="70"></canvas></div>
<div id="jobs" class="grid"></div>
<script>
"use strict";
const $ = id => document.getElementById(id);
// Slot-occupancy history, backfilled from the service history store
// (-history on a4nn-serve). Hidden when history is off (non-200).
let slotCap = 0;
function drawSlotHist(points) {
  const c = $("slothist");
  if (!points || !points.length) return;
  c.style.display = "block";
  const g = c.getContext("2d");
  g.clearRect(0, 0, c.width, c.height);
  const max = Math.max(slotCap, ...points.map(p => p.v), 1);
  g.strokeStyle = "#4c8"; g.beginPath();
  points.forEach((p, i) => {
    const x = i / Math.max(1, points.length - 1) * (c.width - 8) + 4;
    const y = c.height - 4 - p.v / max * (c.height - 8);
    i ? g.lineTo(x, y) : g.moveTo(x, y);
  });
  g.stroke();
}
function refreshSlotHist() {
  fetch("/api/query?series=a4nn_fleet_in_use_slots&step=2000")
    .then(r => r.ok ? r.json() : null)
    .then(d => { if (d && d.points) drawSlotHist(d.points); })
    .catch(() => {});
}
refreshSlotHist();
setInterval(refreshSlotHist, 10000);
function card(j) {
  const p = j.progress || {}, f = j.fleet || {}, h = j.health || {};
  const genPct = p.generations_total ? 100 * p.generations_done / p.generations_total : 0;
  const modPct = p.models_total ? 100 * p.models_done / p.models_total : 0;
  const div = document.createElement("div");
  div.className = "card";
  div.innerHTML =
    '<b><a href="/api/jobs/' + encodeURIComponent(j.id) + '/dashboard">' + j.id + '</a></b> ' +
    '<span class="state ' + j.state + '">' + j.state + '</span>' +
    (h.status ? ' <span class="health ' + h.status + '">' + h.status +
      (h.active ? ' (' + h.active + ' alerts)' : '') + '</span>' : '') +
    '<div class="muted">gen ' + (p.generations_done || 0) + '/' + (p.generations_total || 0) +
      ' · ' + (p.models_done || 0) + '/' + (p.models_total || 0) + ' models · best ' +
      (p.best_fitness || 0).toFixed(2) + '%</div>' +
    '<div class="bar"><div style="width:' + genPct.toFixed(1) + '%"></div></div>' +
    '<div class="bar"><div style="width:' + modPct.toFixed(1) + '%"></div></div>' +
    '<div class="muted">weight ' + (f.weight || 0) + ' · ' + (f.held_slots || 0) + ' slots held · ' +
      (f.grants || 0) + ' grants · waited ' + (f.wait_seconds || 0).toFixed(1) + 's</div>' +
    (j.error ? '<div class="muted">error: ' + j.error + '</div>' : '');
  return div;
}
function refresh() {
  fetch("/api/fleet").then(r => r.json()).then(v => {
    const fs = v.fleet || {};
    $("slotline").textContent = (fs.in_use || 0) + "/" + (fs.capacity || 0) +
      " device slots in use · " + (fs.waiting || 0) + " jobs waiting";
    $("slotbar").style.width = fs.capacity ? (100 * fs.in_use / fs.capacity) + "%" : "0";
    slotCap = fs.capacity || 0;
    $("drain").style.display = v.draining ? "inline" : "none";
    const jobsEl = $("jobs");
    jobsEl.innerHTML = "";
    (v.jobs || []).forEach(j => jobsEl.appendChild(card(j)));
  }).catch(() => {});
}
refresh();
setInterval(refresh, 2000);
</script>
</body></html>
`
