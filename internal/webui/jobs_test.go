package webui

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"a4nn/internal/jobs"
	"a4nn/internal/obs"
)

// jobServer builds a webui server with the job service mounted.
func jobServer(t *testing.T, slots int) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	srv, err := New(testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	m, err := jobs.NewManager(jobs.Options{Root: t.TempDir(), FleetSlots: slots})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	srv.SetJobs(m)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, m
}

func doReq(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	var rdr *strings.Reader
	if body == "" {
		rdr = strings.NewReader("")
	} else {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 64*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

const smallJobBody = `{"id":"alpha","population":4,"offspring":4,"generations":2,"epochs":8,"seed":42}`

func waitJobState(t *testing.T, m *jobs.Manager, id string, want jobs.State) jobs.Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	if st.State != want {
		t.Fatalf("state = %s (%s), want %s", st.State, st.Error, want)
	}
	return st
}

func TestJobAPILifecycle(t *testing.T) {
	ts, m := jobServer(t, 2)

	code, body := doReq(t, "POST", ts.URL+"/api/jobs", smallJobBody)
	if code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	var st jobs.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != "alpha" || st.Config.Priority != 10 {
		t.Fatalf("status = %+v", st)
	}

	waitJobState(t, m, "alpha", jobs.StateCompleted)

	code, body = doReq(t, "GET", ts.URL+"/api/jobs/alpha", "")
	if code != 200 || !strings.Contains(body, `"state": "completed"`) {
		t.Fatalf("get: %d %s", code, body)
	}
	code, body = doReq(t, "GET", ts.URL+"/api/jobs", "")
	if code != 200 || !strings.Contains(body, `"alpha"`) {
		t.Fatalf("list: %d %s", code, body)
	}

	// Per-job observability endpoints answer after the run.
	for _, path := range []string{
		"/api/jobs/alpha/healthz", "/api/jobs/alpha/alerts", "/api/jobs/alpha/dashboard",
	} {
		if code, body := doReq(t, "GET", ts.URL+path, ""); code != 200 {
			t.Fatalf("%s: %d %s", path, code, body)
		}
	}
	_, page := doReq(t, "GET", ts.URL+"/api/jobs/alpha/dashboard", "")
	if !strings.Contains(page, `data-events="/api/jobs/alpha/events"`) {
		t.Fatal("job dashboard not bound to the job's SSE stream")
	}

	// The SSE stream replays the finished run's journal.
	req, err := http.NewRequest("GET", ts.URL+"/api/jobs/alpha/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("events: %d", resp.StatusCode)
	}
	buf := make([]byte, 32*1024)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "event: run_start") {
		t.Fatalf("SSE replay missing run_start: %q", string(buf[:n]))
	}
}

// TestJobAPIErrors is the table-driven sweep over the API's failure
// paths: malformed bodies, unknown ids, conflicts, and draining.
func TestJobAPIErrors(t *testing.T) {
	ts, m := jobServer(t, 2)
	if code, body := doReq(t, "POST", ts.URL+"/api/jobs", smallJobBody); code != http.StatusCreated {
		t.Fatalf("seed submit: %d %s", code, body)
	}
	waitJobState(t, m, "alpha", jobs.StateCompleted)

	cases := []struct {
		name         string
		method, path string
		body         string
		wantCode     int
		wantFrag     string
	}{
		{"malformed config JSON", "POST", "/api/jobs", `{"id":`, http.StatusBadRequest, "malformed job config"},
		{"unknown config field", "POST", "/api/jobs", `{"id":"x","poplation":4}`, http.StatusBadRequest, "poplation"},
		{"config wrong type", "POST", "/api/jobs", `{"seed":"forty-two"}`, http.StatusBadRequest, "malformed job config"},
		{"invalid beam", "POST", "/api/jobs", `{"beam":"blinding"}`, http.StatusBadRequest, "beam"},
		{"invalid id", "POST", "/api/jobs", `{"id":"../escape"}`, http.StatusBadRequest, "must match"},
		{"too many devices", "POST", "/api/jobs", `{"devices":5}`, http.StatusBadRequest, "fleet has 2"},
		{"duplicate job id", "POST", "/api/jobs", smallJobBody, http.StatusConflict, "already exists"},
		{"cancel unknown job", "DELETE", "/api/jobs/ghost", "", http.StatusNotFound, "unknown job"},
		{"cancel completed job", "DELETE", "/api/jobs/alpha", "", http.StatusConflict, "already finished"},
		{"pause unknown job", "POST", "/api/jobs/ghost/pause", "", http.StatusNotFound, "unknown job"},
		{"resume unknown job", "POST", "/api/jobs/ghost/resume", "", http.StatusNotFound, "unknown job"},
		{"status of unknown job", "GET", "/api/jobs/ghost", "", http.StatusNotFound, "unknown job"},
		{"events of unknown job", "GET", "/api/jobs/ghost/events", "", http.StatusNotFound, "unknown job"},
		{"healthz of unknown job", "GET", "/api/jobs/ghost/healthz", "", http.StatusNotFound, "unknown job"},
		{"dashboard of unknown job", "GET", "/api/jobs/ghost/dashboard", "", http.StatusNotFound, "unknown job"},
		{"malformed priority", "POST", "/api/jobs/alpha/priority", `{"priority":"max"}`, http.StatusBadRequest, "malformed priority"},
		{"priority out of range", "POST", "/api/jobs/alpha/priority", `{"priority":250}`, http.StatusBadRequest, "outside [1,99]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := doReq(t, tc.method, ts.URL+tc.path, tc.body)
			if code != tc.wantCode || !strings.Contains(body, tc.wantFrag) {
				t.Fatalf("%s %s → %d %q, want %d containing %q",
					tc.method, tc.path, code, body, tc.wantCode, tc.wantFrag)
			}
		})
	}

	// Submit while draining is its own state, not a validation error.
	m.Drain()
	code, body := doReq(t, "POST", ts.URL+"/api/jobs", `{"id":"late"}`)
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("submit while draining: %d %s", code, body)
	}
}

func TestFleetView(t *testing.T) {
	ts, m := jobServer(t, 2)
	if code, body := doReq(t, "POST", ts.URL+"/api/jobs", smallJobBody); code != http.StatusCreated {
		t.Fatalf("submit: %d %s", code, body)
	}
	waitJobState(t, m, "alpha", jobs.StateCompleted)

	code, body := doReq(t, "GET", ts.URL+"/api/fleet", "")
	if code != 200 {
		t.Fatalf("fleet: %d %s", code, body)
	}
	var view struct {
		Fleet struct {
			Capacity int `json:"capacity"`
			InUse    int `json:"in_use"`
		} `json:"fleet"`
		Draining bool `json:"draining"`
		Jobs     []struct {
			ID       string `json:"id"`
			State    string `json:"state"`
			Progress struct {
				ModelsDone int `json:"models_done"`
			} `json:"progress"`
			Health *struct {
				Status string `json:"status"`
			} `json:"health"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(body), &view); err != nil {
		t.Fatalf("fleet JSON: %v\n%s", err, body)
	}
	if view.Fleet.Capacity != 2 || view.Fleet.InUse != 0 {
		t.Fatalf("fleet = %+v", view.Fleet)
	}
	if len(view.Jobs) != 1 || view.Jobs[0].ID != "alpha" || view.Jobs[0].State != "completed" {
		t.Fatalf("jobs = %+v", view.Jobs)
	}
	if view.Jobs[0].Progress.ModelsDone != 8 {
		t.Fatalf("models done = %d, want 8", view.Jobs[0].Progress.ModelsDone)
	}
	if view.Jobs[0].Health == nil || view.Jobs[0].Health.Status == "" {
		t.Fatalf("health missing: %+v", view.Jobs[0])
	}

	code, page := doReq(t, "GET", ts.URL+"/fleet", "")
	if code != 200 || !strings.Contains(page, "/api/fleet") || !strings.Contains(page, "A4NN fleet") {
		t.Fatalf("fleet page: %d", code)
	}
}

func TestNoJobsEndpointsWithoutManager(t *testing.T) {
	ts := newTestServer(t)
	if code, _ := doReq(t, "POST", ts.URL+"/api/jobs", smallJobBody); code != 404 && code != 405 {
		t.Fatalf("POST /api/jobs without manager: %d", code)
	}
	if code, _ := doReq(t, "GET", ts.URL+"/api/fleet", ""); code != 404 {
		t.Fatalf("GET /api/fleet without manager: %d", code)
	}
}

// TestJobAndFleetMetricsEndpoints drives two concurrent jobs and
// asserts the three metrics surfaces: each job's own scope endpoint,
// the fleet fair-share audit, and the shared /metrics roll-up with
// job-labelled series — which must drop those labels once the jobs
// are gone (the cardinality bound).
func TestJobAndFleetMetricsEndpoints(t *testing.T) {
	srv, err := New(testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	observer := obs.NewObserver()
	srv.SetObserver(observer)
	m, err := jobs.NewManager(jobs.Options{Root: t.TempDir(), FleetSlots: 2, Obs: observer})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	srv.SetJobs(m)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	for _, id := range []string{"alpha", "beta"} {
		body := `{"id":"` + id + `","population":4,"offspring":4,"generations":50,"epochs":8,"seed":7}`
		if code, resp := doReq(t, "POST", ts.URL+"/api/jobs", body); code != http.StatusCreated {
			t.Fatalf("submit %s: %d %s", id, code, resp)
		}
	}
	// Wait until both scopes exist (the searches have started their
	// observers).
	deadline := time.Now().Add(30 * time.Second)
	for {
		a, _ := m.JobRegistry("alpha")
		b, _ := m.JobRegistry("beta")
		if a != nil && b != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job scopes never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Per-job endpoint: each job's own undecorated series.
	for _, id := range []string{"alpha", "beta"} {
		code, body := doReq(t, "GET", ts.URL+"/api/jobs/"+id+"/metrics", "")
		if code != http.StatusOK {
			t.Fatalf("job metrics %s: %d %s", id, code, body)
		}
		if !strings.Contains(body, "a4nn_events_emitted_total") {
			t.Errorf("job metrics %s missing journal series:\n%s", id, body)
		}
		if strings.Contains(body, `job="`) {
			t.Errorf("job metrics %s should be undecorated:\n%s", id, body)
		}
	}

	// Fleet audit: entitled vs measured share gauges for both jobs.
	code, body := doReq(t, "GET", ts.URL+"/api/fleet/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("fleet metrics: %d %s", code, body)
	}
	for _, want := range []string{
		`a4nn_fleet_entitled_share{job="alpha"}`,
		`a4nn_fleet_entitled_share{job="beta"}`,
		`a4nn_fleet_measured_share{job="alpha"}`,
		`a4nn_fleet_measured_share{job="beta"}`,
		"a4nn_fleet_capacity_slots 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("fleet metrics missing %q:\n%s", want, body)
		}
	}
	// Equal priorities: each job is entitled to half the fleet.
	if !strings.Contains(body, `a4nn_fleet_entitled_share{job="alpha"} 0.5`) {
		t.Errorf("entitled share not 0.5 for equal weights:\n%s", body)
	}

	// Shared /metrics: the same job series, rolled up with labels.
	code, body = doReq(t, "GET", ts.URL+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("shared metrics: %d", code)
	}
	for _, want := range []string{
		`a4nn_events_emitted_total{job="alpha"}`,
		`a4nn_events_emitted_total{job="beta"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("shared metrics missing roll-up %q:\n%s", want, body)
		}
	}

	// Terminal jobs retire from the roll-up but keep their own endpoint.
	for _, id := range []string{"alpha", "beta"} {
		doReq(t, "DELETE", ts.URL+"/api/jobs/"+id, "")
		waitJobState(t, m, id, jobs.StateCanceled)
	}
	code, body = doReq(t, "GET", ts.URL+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("shared metrics after teardown: %d", code)
	}
	if strings.Contains(body, `job="`) {
		t.Errorf("job-labelled series survived teardown:\n%s", body)
	}
	code, body = doReq(t, "GET", ts.URL+"/api/jobs/alpha/metrics", "")
	if code != http.StatusOK || !strings.Contains(body, "a4nn_events_emitted_total") {
		t.Errorf("terminal job metrics = %d:\n%s", code, body)
	}
}
