package webui

import (
	"net/http/httptest"
	"strings"
	"testing"

	"a4nn/internal/obs"
)

func TestObserverEndpoints(t *testing.T) {
	srv, err := New(testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver()
	o.Registry().Counter("a4nn_train_epochs_total").Add(9)
	srv.SetObserver(o)
	srv.SetObserver(o) // repeated call must not re-register (would panic)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	code, body := get(t, ts.URL+"/metrics")
	if code != 200 || !strings.Contains(body, "a4nn_train_epochs_total 9") {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	code, body = get(t, ts.URL+"/metrics.json")
	if code != 200 || !strings.Contains(body, `"a4nn_train_epochs_total": 9`) {
		t.Fatalf("/metrics.json: %d\n%s", code, body)
	}
	code, body = get(t, ts.URL+"/debug/spans")
	if code != 200 || !strings.Contains(body, `"spans"`) {
		t.Fatalf("/debug/spans: %d\n%s", code, body)
	}
	// The commons API still works alongside the observer routes.
	if code, _ := get(t, ts.URL+"/api/records"); code != 200 {
		t.Fatalf("/api/records: %d", code)
	}
}

func TestNoObserverEndpointsByDefault(t *testing.T) {
	ts := newTestServer(t)
	if code, _ := get(t, ts.URL+"/metrics"); code != 404 {
		t.Fatalf("/metrics without observer: %d, want 404", code)
	}
}

func TestSetObserverNil(t *testing.T) {
	srv, err := New(testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetObserver(nil) // must not panic or mount anything
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	if code, _ := get(t, ts.URL+"/metrics"); code != 404 {
		t.Fatalf("/metrics after SetObserver(nil): %d, want 404", code)
	}
}
