package webui

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"a4nn/internal/tsdb"
)

// SetHistory mounts the run-history range-query endpoints backed by a
// time-series store:
//
//	GET /api/series                          stored series catalogue
//	GET /api/query?series=&from=&to=&step=   range query (unix-ms bounds,
//	                                         step-aligned mean downsampling)
//
// Same contract as SetObserver: at most once, before serving; nil or
// repeat is a no-op. The dashboard uses these to backfill its charts
// before attaching to the live SSE stream, so a reconnect or server
// restart no longer resets every chart to empty.
func (s *Server) SetHistory(db *tsdb.DB) {
	if db == nil || s.historyOn {
		return
	}
	s.historyOn = true
	s.mux.Handle("GET /api/query", QueryHandler(db))
	s.mux.Handle("GET /api/series", SeriesHandler(db))
}

// QueryHandler serves range queries over a history store. A nil store
// answers 503, mirroring EventsHandler's treatment of a nil journal.
func QueryHandler(db *tsdb.DB) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveQuery(w, r, db)
	})
}

// SeriesHandler serves the series catalogue of a history store.
func SeriesHandler(db *tsdb.DB) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveSeries(w, r, db)
	})
}

func serveQuery(w http.ResponseWriter, r *http.Request, db *tsdb.DB) {
	if db == nil {
		http.Error(w, "history not recorded (run with -history)", http.StatusServiceUnavailable)
		return
	}
	series := r.URL.Query().Get("series")
	if series == "" {
		http.Error(w, "missing series parameter", http.StatusBadRequest)
		return
	}
	var bounds [3]int64 // from, to, step
	for i, key := range []string{"from", "to", "step"} {
		raw := r.URL.Query().Get(key)
		if raw == "" {
			continue
		}
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad %s %q: not unix milliseconds", key, raw), http.StatusBadRequest)
			return
		}
		bounds[i] = v
	}
	res, err := db.Query(series, bounds[0], bounds[1], bounds[2])
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, tsdb.ErrNoSeries) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, res)
}

func serveSeries(w http.ResponseWriter, r *http.Request, db *tsdb.DB) {
	if db == nil {
		http.Error(w, "history not recorded (run with -history)", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, db.Series())
}
