package webui

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"a4nn/internal/tsdb"
)

// historyServer mounts a server over a store pre-filled with one
// two-cluster series (a gap between 1000..2000 and 60000..61000 ms).
func historyServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := New(testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	db, err := tsdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for _, ts := range []int64{1000, 1500, 2000, 60000, 60500, 61000} {
		db.Append("acc", ts, float64(ts)/1000)
	}
	srv.SetHistory(db)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func TestQueryEndpoint(t *testing.T) {
	ts := historyServer(t)

	code, body := get(t, ts.URL+"/api/query?series=acc&step=1000")
	if code != 200 {
		t.Fatalf("query: %d\n%s", code, body)
	}
	var res tsdb.Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Series != "acc" || res.StepMS != 1000 {
		t.Fatalf("result header: %+v", res)
	}
	gaps := 0
	for _, p := range res.Points {
		if p.Gap {
			gaps++
		}
	}
	if len(res.Points) != 4 || gaps != 1 {
		t.Fatalf("points = %d with %d gaps, want 4 with 1: %+v", len(res.Points), gaps, res.Points)
	}

	// Windowed query trims to the first cluster.
	code, body = get(t, ts.URL+"/api/query?series=acc&from=0&to=3000")
	if code != 200 || strings.Contains(body, "60000") {
		t.Fatalf("windowed query leaked out-of-range samples: %d\n%s", code, body)
	}

	// Error mapping: missing parameter, garbage bounds, unknown series.
	if code, _ = get(t, ts.URL+"/api/query"); code != 400 {
		t.Errorf("missing series: %d, want 400", code)
	}
	if code, _ = get(t, ts.URL+"/api/query?series=acc&from=yesterday"); code != 400 {
		t.Errorf("garbage from: %d, want 400", code)
	}
	if code, _ = get(t, ts.URL+"/api/query?series=nope"); code != 404 {
		t.Errorf("unknown series: %d, want 404", code)
	}
}

func TestSeriesEndpoint(t *testing.T) {
	ts := historyServer(t)
	code, body := get(t, ts.URL+"/api/series")
	if code != 200 {
		t.Fatalf("series: %d\n%s", code, body)
	}
	var infos []tsdb.SeriesInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "acc" || infos[0].Samples != 6 {
		t.Fatalf("catalogue: %+v", infos)
	}
}

func TestQueryEndpointsAbsentWithoutHistory(t *testing.T) {
	ts := newTestServer(t)
	if code, _ := get(t, ts.URL+"/api/query?series=acc"); code != 404 {
		t.Errorf("/api/query without SetHistory: %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/api/series"); code != 404 {
		t.Errorf("/api/series without SetHistory: %d, want 404", code)
	}
}

func TestQueryHandlerNilDB(t *testing.T) {
	// The standalone handlers (mounted by cmd/a4nn's metrics mux even
	// without -history) answer 503 with a hint, not a panic.
	ts := httptest.NewServer(QueryHandler(nil))
	t.Cleanup(ts.Close)
	code, body := get(t, ts.URL+"?series=acc")
	if code != 503 || !strings.Contains(body, "-history") {
		t.Fatalf("nil-db query: %d\n%s", code, body)
	}
}
