package webui

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"net/http"
	"strconv"
	"strings"

	"a4nn/internal/obs"
)

// EventsHandler streams a journal's events as Server-Sent Events. Each
// event is framed with its journal sequence number as the SSE id and
// its type as the SSE event name, so EventSource clients dispatch on
// type and, on reconnect, resume from where they left off: the
// standard Last-Event-ID header (or a last_id query parameter, for
// curl) replays everything still in the journal's ring with a greater
// sequence number before going live.
//
// The handler subscribes to the broker *before* snapshotting the
// replay window, so no event can fall between replay and live; live
// events at or below the replayed tail are skipped. A client that
// stops reading is evicted by the broker (its channel closes) and the
// handler returns — hundreds of dashboards can never stall the search.
func EventsHandler(j *obs.Journal) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if j == nil {
			http.Error(w, "event journal unavailable", http.StatusServiceUnavailable)
			return
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		var last uint64
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			last, _ = strconv.ParseUint(v, 10, 64)
		} else if v := r.URL.Query().Get("last_id"); v != "" {
			last, _ = strconv.ParseUint(v, 10, 64)
		}
		sub := j.Subscribe(0)
		defer sub.Close()

		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("X-Accel-Buffering", "no")
		w.WriteHeader(http.StatusOK)

		for _, e := range j.Since(last) {
			if writeSSE(w, e) != nil {
				return
			}
			last = e.Seq
		}
		fl.Flush()

		ctx := r.Context()
		for {
			select {
			case <-ctx.Done():
				return
			case e, open := <-sub.C():
				if !open {
					return // evicted by the broker
				}
				if e.Seq <= last {
					continue // already sent during replay
				}
				last = e.Seq
				if writeSSE(w, e) != nil {
					return
				}
				fl.Flush()
			}
		}
	})
}

// writeSSE frames one event in text/event-stream format.
func writeSSE(w io.Writer, e obs.Event) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	return err
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, dashboardHTML)
}

// DashboardHandler serves the live dashboard page standalone, for
// mounting next to EventsHandler on listeners that are not a full
// webui.Server (cmd/a4nn's metrics address). The page only needs
// /events on the same host.
func DashboardHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, dashboardHTML)
	})
}

// dashboardPage rebinds the dashboard to a different SSE stream,
// alert endpoint, and history-query endpoints — the per-job dashboards
// point one shared page at /api/jobs/{id}/{events,alerts,query,series}.
func dashboardPage(eventsURL, alertsURL, queryURL, seriesURL string) string {
	page := strings.Replace(dashboardHTML, `data-events="/events"`,
		`data-events="`+template.HTMLEscapeString(eventsURL)+`"`, 1)
	page = strings.Replace(page, `data-alerts="/api/alerts"`,
		`data-alerts="`+template.HTMLEscapeString(alertsURL)+`"`, 1)
	page = strings.Replace(page, `data-query="/api/query"`,
		`data-query="`+template.HTMLEscapeString(queryURL)+`"`, 1)
	return strings.Replace(page, `data-series="/api/series"`,
		`data-series="`+template.HTMLEscapeString(seriesURL)+`"`, 1)
}

// dashboardHTML is the live dashboard: a single self-contained page
// driven entirely by the /events SSE stream (no polling, no external
// assets). It tracks generation progress, per-device utilization,
// validation-accuracy sparklines, the accuracy-vs-MFLOPs Pareto
// scatter, the epochs saved by predictive termination, and — when the
// health monitor is on — an alert strip fed by the alert events the
// engine re-emits through the journal.
// The page reads its event-stream, alert-backfill, and history-query
// URLs from the <body> data attributes, so dashboardPage can rebind one
// instance to a job-namespaced prefix (/api/jobs/{id}/…) without
// duplicating markup. When the history store is on, every SSE open
// backfills the charts from /api/query before live events resume.
const dashboardHTML = `<!DOCTYPE html>
<html><head><title>A4NN live dashboard</title>
<style>
body { font-family: monospace; margin: 1.5rem; background: #111; color: #ddd; }
h1 { font-size: 1.2rem; } h2 { font-size: 1rem; color: #9cf; margin-bottom: .3rem; }
.grid { display: grid; grid-template-columns: 1fr 1fr; gap: 1.2rem; max-width: 70rem; }
.card { background: #1b1b1b; border: 1px solid #333; padding: .8rem 1rem; border-radius: 4px; }
.big { font-size: 1.6rem; color: #fff; }
.bar { background: #333; height: .7rem; border-radius: 3px; overflow: hidden; margin: .15rem 0; }
.bar > div { background: #4c8; height: 100%; width: 0; }
canvas { background: #161616; border: 1px solid #2a2a2a; width: 100%; }
#log { max-height: 10rem; overflow-y: auto; font-size: .8rem; color: #888; }
.muted { color: #777; font-size: .85rem; }
#conn { float: right; } .ok { color: #4c8; } .bad { color: #e66; }
#alerts { max-width: 70rem; margin-bottom: 1rem; }
.alert { border-left: 4px solid; padding: .3rem .7rem; margin: .25rem 0;
  background: #1b1b1b; border-radius: 3px; font-size: .85rem; }
.alert.info { border-color: #9cf; } .alert.warning { border-color: #ec5; color: #ec5; }
.alert.critical { border-color: #e66; color: #e66; }
.alert .cnt { float: right; color: #777; }
</style></head><body data-events="/events" data-alerts="/api/alerts" data-query="/api/query" data-series="/api/series">
<h1>A4NN live dashboard <span id="conn" class="bad">connecting…</span></h1>
<div id="alerts"></div>
<div class="grid">
<div class="card"><h2>Generation</h2>
  <div class="big" id="gen">–</div>
  <div class="bar"><div id="genbar"></div></div>
  <div class="muted" id="gendetail">waiting for events</div></div>
<div class="card"><h2>Prediction savings</h2>
  <div class="big"><span id="saved">0</span> epochs saved</div>
  <div class="muted"><span id="terms">0</span> early terminations ·
    <span id="faults">0</span> faults · <span id="retries">0</span> retries ·
    <span id="resumes">0</span> resumes · <span id="quar">0</span> quarantined</div></div>
<div class="card"><h2>Device utilization</h2><div id="devices" class="muted">no generation finished yet</div></div>
<div class="card"><h2>Validation accuracy</h2><canvas id="acc" width="560" height="120"></canvas>
  <div class="muted">last <span id="accn">0</span> epoch reports</div></div>
<div class="card"><h2>Pareto front (accuracy vs MFLOPs)</h2><canvas id="pareto" width="560" height="180"></canvas>
  <div class="muted"><span id="frontn">0</span> non-dominated models</div></div>
<div class="card"><h2>Search progress (best accuracy)</h2><canvas id="prog" width="560" height="120"></canvas>
  <div class="muted"><span id="progn">0</span> points</div></div>
<div class="card"><h2>Event log</h2><div id="log"></div></div>
</div>
<script>
"use strict";
const $ = id => document.getElementById(id);
let tasksDone = 0, tasksTotal = 0, saved = 0, terms = 0, faults = 0, retries = 0,
  resumes = 0, quarantined = 0;
const accs = [], maxAccs = 200;
const prog = [], maxProg = 400;
let front = [];
function logLine(s) {
  const d = $("log"), p = document.createElement("div");
  p.textContent = s; d.prepend(p);
  while (d.childNodes.length > 60) d.removeChild(d.lastChild);
}
function drawAcc() {
  const c = $("acc"), g = c.getContext("2d");
  g.clearRect(0, 0, c.width, c.height);
  if (!accs.length) return;
  g.strokeStyle = "#4c8"; g.beginPath();
  accs.forEach((a, i) => {
    const x = i / Math.max(1, accs.length - 1) * (c.width - 8) + 4;
    const y = c.height - 4 - a / 100 * (c.height - 8);
    i ? g.lineTo(x, y) : g.moveTo(x, y);
  });
  g.stroke();
  $("accn").textContent = accs.length;
}
function drawProg() {
  const c = $("prog"), g = c.getContext("2d");
  g.clearRect(0, 0, c.width, c.height);
  if (!prog.length) return;
  g.strokeStyle = "#9cf"; g.beginPath();
  prog.forEach((v, i) => {
    const x = i / Math.max(1, prog.length - 1) * (c.width - 8) + 4;
    const y = c.height - 4 - v / 100 * (c.height - 8);
    i ? g.lineTo(x, y) : g.moveTo(x, y);
  });
  g.stroke();
  $("progn").textContent = prog.length;
}
function renderDevices(pcts) {
  $("devices").innerHTML = "";
  pcts.forEach((pct, i) => {
    if (pct === undefined) return;
    const row = document.createElement("div");
    row.innerHTML = "dev " + i + " " + pct.toFixed(0) +
      '%<div class="bar"><div style="width:' + Math.min(100, pct).toFixed(1) + '%"></div></div>';
    $("devices").appendChild(row);
  });
}
function drawPareto() {
  const c = $("pareto"), g = c.getContext("2d");
  g.clearRect(0, 0, c.width, c.height);
  if (!front.length) return;
  const maxF = Math.max(...front.map(p => p.mflops || 0), 1);
  g.fillStyle = "#9cf";
  front.forEach(p => {
    const x = (p.mflops || 0) / maxF * (c.width - 16) + 8;
    const y = c.height - 8 - (p.acc || 0) / 100 * (c.height - 16);
    g.beginPath(); g.arc(x, y, 3, 0, 7); g.fill();
  });
  $("frontn").textContent = front.length;
}
function handle(type, e) {
  switch (type) {
  case "run_start":
    logLine("run started: " + (e.devices || 0) + " devices, " + (e.epochs || 0) + " max epochs"); break;
  case "generation_start":
    tasksTotal = e.tasks || 0; tasksDone = 0;
    $("gen").textContent = "gen " + (e.gen || 0);
    $("gendetail").textContent = tasksTotal + " tasks on " + (e.devices || 0) + " devices";
    $("genbar").style.width = "0%"; break;
  case "model_done":
    tasksDone++;
    if (tasksTotal) $("genbar").style.width = (100 * tasksDone / tasksTotal).toFixed(1) + "%";
    break;
  case "generation_end": {
    $("genbar").style.width = "100%";
    const busy = e.device_busy || [], wall = e.wall_seconds || 0;
    renderDevices(busy.map(b => wall > 0 ? 100 * b / wall : 0));
    logLine("gen " + (e.gen || 0) + " done: wall " + (wall).toFixed(1) + "s, " +
      (e.faults || 0) + " faults"); break;
  }
  case "epoch":
    accs.push(e.val_acc || 0); if (accs.length > maxAccs) accs.shift();
    drawAcc(); break;
  case "predict_terminate":
    saved += e.saved_epochs || 0; terms++;
    $("saved").textContent = saved; $("terms").textContent = terms;
    logLine("terminated " + (e.model || "?") + " early: predicted " +
      (e.predicted || 0).toFixed(2) + "%, saved " + (e.saved_epochs || 0) + " epochs");
    break;
  case "pareto_update":
    front = e.front || []; drawPareto();
    if (front.length) {
      prog.push(Math.max(...front.map(p => p.acc || 0)));
      if (prog.length > maxProg) prog.shift();
      drawProg();
    }
    break;
  case "task_fault":
    faults++; $("faults").textContent = faults;
    logLine("fault on device " + (e.device || 0) + ": " + (e.err || "")); break;
  case "task_retry":
    retries++; $("retries").textContent = retries; break;
  case "model_resume":
    resumes++; $("resumes").textContent = resumes;
    logLine("resumed " + (e.model || "?") + " from checkpoint at epoch " + (e.epoch || 0));
    break;
  case "recovery":
    if (e.reason !== "stale") { quarantined++; $("quar").textContent = quarantined; }
    logLine("recovery: " + (e.msg || e.reason || "")); break;
  case "alert_cmd":
    logLine(e.msg || "alert command ran"); break;
  case "run_end":
    logLine("run finished: " + (e.tasks || 0) + " models, " +
      (e.saved_epochs || 0) + " epochs saved"); break;
  case "alert": {
    const id = e.alert || "?";
    let row = alerts.get(id);
    if (!row) {
      row = document.createElement("div");
      alerts.set(id, row);
      $("alerts").prepend(row);
    }
    row.className = "alert " + (e.severity || "info");
    row.innerHTML = '<span class="cnt">×' + (e.count || 1) + "</span><b>" +
      (e.severity || "info") + "</b> [" + (e.monitor || "?") + "] ";
    row.appendChild(document.createTextNode(e.msg || ""));
    logLine("ALERT " + (e.severity || "") + " " + id + ": " + (e.msg || ""));
    break;
  }
  case "alert_resolved": {
    const row = alerts.get(e.alert || "?");
    if (row) { row.remove(); alerts.delete(e.alert || "?"); }
    logLine("resolved " + (e.alert || "?")); break;
  }
  }
}
const alerts = new Map();
// Backfill the alert strip before the SSE stream connects: alerts that
// fired before this page load are only in the engine's active set, not
// in the replayed tail, so a reload would otherwise show a blank strip
// until the next transition. 404 (health disabled) just leaves it empty.
fetch(document.body.dataset.alerts).then(r => r.ok ? r.json() : null).then(d => {
  if (!d || !d.active) return;
  d.active.forEach(a => handle("alert", {alert: a.id, severity: a.severity,
    monitor: a.monitor, msg: a.msg, count: a.count}));
}).catch(() => {});
const types = ["run_start","run_end","generation_start","generation_end","task_dispatch",
  "task_retry","task_fault","straggler","epoch","model_done","predict_converge",
  "predict_terminate","pareto_update","alert","alert_resolved",
  "model_resume","recovery","alert_cmd"];
// backfill reseeds the charts from the history store's range-query API
// (404/503 = history off, charts stay live-only). It runs on every SSE
// open — page load AND reconnect — so a dropped connection or a server
// restart no longer resets the sparkline, utilisation bars, and
// search-progress chart to empty; live events then continue on top of
// the recovered history.
function backfill() {
  const q = document.body.dataset.query, s = document.body.dataset.series;
  if (!q) return;
  const get = name =>
    fetch(q + "?series=" + encodeURIComponent(name) + "&step=1000")
      .then(r => r.ok ? r.json() : null).catch(() => null);
  get("a4nn_train_last_accuracy_percent").then(d => {
    if (!d || !d.points || !d.points.length) return;
    accs.length = 0;
    d.points.slice(-maxAccs).forEach(p => accs.push(p.v));
    drawAcc();
  });
  get("a4nn_search_best_fitness_percent").then(d => {
    if (!d || !d.points || !d.points.length) return;
    prog.length = 0;
    d.points.slice(-maxProg).forEach(p => prog.push(p.v));
    drawProg();
  });
  if (!s) return;
  fetch(s).then(r => r.ok ? r.json() : null).then(list => {
    if (!list) return;
    const devs = list.filter(i => i.name.indexOf('a4nn_sched_device_util_pct{device="') === 0);
    if (!devs.length) return;
    Promise.all(devs.map(i => get(i.name))).then(results => {
      const pcts = [];
      results.forEach((d, i) => {
        if (!d || !d.points || !d.points.length) return;
        const m = devs[i].name.match(/device="(\d+)"/);
        if (m) pcts[+m[1]] = d.points[d.points.length - 1].v;
      });
      if (pcts.length) renderDevices(pcts);
    });
  }).catch(() => {});
}
const es = new EventSource(document.body.dataset.events);
es.onopen = () => {
  const c = $("conn"); c.textContent = "live"; c.className = "ok";
  backfill();
};
es.onerror = () => { const c = $("conn"); c.textContent = "reconnecting…"; c.className = "bad"; };
types.forEach(t => es.addEventListener(t, ev => handle(t, JSON.parse(ev.data))));
</script>
</body></html>
`
