package webui

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"a4nn/internal/obs"
)

// sseEvent is one parsed frame from a text/event-stream body.
type sseEvent struct {
	ID   uint64
	Type string
	Data string
}

// sseStream owns the single goroutine reading a response body, so
// successive readSSE calls on the same stream never touch the reader
// concurrently.
type sseStream struct {
	lines chan string
	errs  chan error
}

func newSSEStream(r *bufio.Reader) *sseStream {
	s := &sseStream{lines: make(chan string), errs: make(chan error, 1)}
	go func() {
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				s.errs <- err
				return
			}
			s.lines <- strings.TrimRight(line, "\n")
		}
	}()
	return s
}

// readSSE parses frames off the stream until n events or a timeout.
func readSSE(t *testing.T, s *sseStream, n int, timeout time.Duration) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	deadline := time.Now().Add(timeout)
	for len(out) < n {
		select {
		case line := <-s.lines:
			switch {
			case strings.HasPrefix(line, "id: "):
				cur.ID, _ = strconv.ParseUint(line[4:], 10, 64)
			case strings.HasPrefix(line, "event: "):
				cur.Type = line[7:]
			case strings.HasPrefix(line, "data: "):
				cur.Data = line[6:]
			case line == "":
				out = append(out, cur)
				cur = sseEvent{}
			}
		case err := <-s.errs:
			t.Fatalf("stream ended after %d/%d events: %v", len(out), n, err)
		case <-time.After(time.Until(deadline)):
			t.Fatalf("timed out with %d/%d events", len(out), n)
		}
	}
	return out
}

func sseServer(t *testing.T) (*httptest.Server, *obs.Observer) {
	t.Helper()
	srv, err := New(testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver()
	srv.SetObserver(o)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, o
}

// TestEventsSSEReplayAndLive covers the /events contract end to end:
// a client reconnecting with Last-Event-ID gets exactly the events it
// missed replayed in order, then receives live events as they are
// emitted, with no gap and no duplicates at the replay/live seam.
func TestEventsSSEReplayAndLive(t *testing.T) {
	ts, o := sseServer(t)
	j := o.Journal()
	for i := 1; i <= 5; i++ {
		j.Emit(obs.Event{Type: obs.EventEpoch, Epoch: i, ValAcc: float64(10 * i)})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	stream := newSSEStream(bufio.NewReader(resp.Body))
	replay := readSSE(t, stream, 3, 5*time.Second)
	for i, e := range replay {
		if want := uint64(3 + i); e.ID != want {
			t.Fatalf("replay[%d] id = %d, want %d", i, e.ID, want)
		}
		if e.Type != obs.EventEpoch {
			t.Fatalf("replay[%d] type = %q", i, e.Type)
		}
	}

	// Replay received, so the handler's subscription is live: a fresh
	// emit must arrive as event 6.
	j.Emit(obs.Event{Type: obs.EventModelDone, Model: "m9", Fitness: 88})
	live := readSSE(t, stream, 1, 5*time.Second)
	if live[0].ID != 6 || live[0].Type != obs.EventModelDone {
		t.Fatalf("live event = %+v", live[0])
	}
	if !strings.Contains(live[0].Data, `"model":"m9"`) {
		t.Fatalf("live data %q", live[0].Data)
	}
}

func TestEventsSSELastIDQueryParam(t *testing.T) {
	ts, o := sseServer(t)
	j := o.Journal()
	for i := 1; i <= 4; i++ {
		j.Emit(obs.Event{Type: obs.EventEpoch, Epoch: i})
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/events?last_id=3", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got := readSSE(t, newSSEStream(bufio.NewReader(resp.Body)), 1, 5*time.Second)
	if got[0].ID != 4 {
		t.Fatalf("first replayed id = %d, want 4", got[0].ID)
	}
}

func TestEventsHandlerNilJournal(t *testing.T) {
	rec := httptest.NewRecorder()
	EventsHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/events", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
}

func TestDashboardServed(t *testing.T) {
	ts, _ := sseServer(t)
	code, body := get(t, ts.URL+"/dashboard")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"EventSource", "/events", "pareto_update", "Device utilization"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	// The alert strip backfills from /api/alerts before the stream
	// connects, so a reload shows alerts that fired before page load.
	// Both URLs come from body data attributes so per-job dashboards can
	// rebind them.
	for _, want := range []string{
		`data-events="/events"`, `data-alerts="/api/alerts"`,
		`fetch(document.body.dataset.alerts)`, "d.active.forEach",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard missing alert backfill fragment %q", want)
		}
	}
	if strings.Index(body, "dataset.alerts") > strings.Index(body, "new EventSource") {
		t.Fatal("alert backfill must be wired before the EventSource connects")
	}
}

func TestDashboardPageRebind(t *testing.T) {
	page := dashboardPage("/api/jobs/j1/events", "/api/jobs/j1/alerts",
		"/api/jobs/j1/query", "/api/jobs/j1/series")
	for _, want := range []string{
		`data-events="/api/jobs/j1/events"`, `data-alerts="/api/jobs/j1/alerts"`,
		`data-query="/api/jobs/j1/query"`, `data-series="/api/jobs/j1/series"`,
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("rebound dashboard missing %q", want)
		}
	}
	for _, stale := range []string{`data-events="/events"`, `data-alerts="/api/alerts"`, `data-query="/api/query"`} {
		if strings.Contains(page, stale) {
			t.Fatalf("rebound dashboard still has %q", stale)
		}
	}
}

func TestNoEventsEndpointWithoutObserver(t *testing.T) {
	ts := newTestServer(t)
	if code, _ := get(t, ts.URL+"/events"); code != 404 {
		t.Fatalf("/events without observer: %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/dashboard"); code != 404 {
		t.Fatalf("/dashboard without observer: %d, want 404", code)
	}
}
