// Package webui serves a data commons over HTTP: a read-only JSON API
// plus a minimal HTML index. It is the shareable-interface counterpart of
// the paper's Dataverse deposit and Jupyter analyzer (§2.3, §2.6) — point
// it at a commons directory and colleagues can browse record trails,
// summaries, and architecture renderings from a browser or curl.
//
// Endpoints:
//
//	GET /                    HTML index with the run summary
//	GET /api/records         all record IDs
//	GET /api/records/{id}    one full record trail (JSON)
//	GET /api/records/{id}/dot   Graphviz rendering of the architecture
//	GET /api/summary?beam=low   aggregate statistics
//	GET /api/pareto?beam=low    Pareto frontier of the stored models
//
// With SetObserver the server additionally exposes the live
// observability endpoints of a running search:
//
//	GET /metrics        Prometheus text format
//	GET /metrics.json   expvar-style JSON snapshot
//	GET /debug/spans    bounded span ring as JSON
//
// With SetHealth the in-situ health monitor surfaces too:
//
//	GET /healthz        aggregate status (200 ok/degraded, 503 critical)
//	GET /api/alerts     active and recently resolved alerts
package webui

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strings"

	"a4nn/internal/analyzer"
	"a4nn/internal/commons"
	"a4nn/internal/core"
	"a4nn/internal/genome"
	"a4nn/internal/health"
	"a4nn/internal/jobs"
	"a4nn/internal/lineage"
	"a4nn/internal/obs"
)

// Server wraps a commons store with HTTP handlers.
type Server struct {
	store     *commons.Store
	mux       *http.ServeMux
	obsOn     bool
	healthOn  bool
	jobsOn    bool
	historyOn bool
	jobs      *jobs.Manager
	cache     *ttlCache
}

// New builds a server over the store.
func New(store *commons.Store) (*Server, error) {
	if store == nil {
		return nil, fmt.Errorf("webui: nil store")
	}
	s := &Server{store: store, mux: http.NewServeMux(), cache: newTTLCache(APICacheTTL)}
	s.mux.HandleFunc("GET /api/records", s.handleRecords)
	s.mux.HandleFunc("GET /api/records/{id}", s.handleRecord)
	s.mux.HandleFunc("GET /api/records/{id}/dot", s.handleDOT)
	s.mux.HandleFunc("GET /api/summary", s.handleSummary)
	s.mux.HandleFunc("GET /api/pareto", s.handlePareto)
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	return s, nil
}

// SetObserver mounts the live observability endpoints (/metrics,
// /metrics.json, /debug/spans, the /events SSE stream, and the
// /dashboard page) backed by the observer of a running search. Call at
// most once, before serving; a nil observer or a repeated call is a
// no-op.
func (s *Server) SetObserver(o *obs.Observer) {
	if o == nil || s.obsOn {
		return
	}
	s.obsOn = true
	s.mux.Handle("GET /metrics", o.Registry().MetricsHandler())
	s.mux.Handle("GET /metrics.json", o.Registry().JSONHandler())
	s.mux.Handle("GET /debug/spans", o.Tracer().SpansHandler())
	s.mux.Handle("GET /events", EventsHandler(o.Journal()))
	s.mux.HandleFunc("GET /dashboard", s.handleDashboard)
}

// SetHealth mounts the health monitor's endpoints (GET /healthz and
// GET /api/alerts) backed by a running engine. Same contract as
// SetObserver: at most once, before serving; nil or repeat is a no-op.
func (s *Server) SetHealth(e *health.Engine) {
	if e == nil || s.healthOn {
		return
	}
	s.healthOn = true
	s.mux.Handle("GET /healthz", health.HealthzHandler(e))
	s.mux.Handle("GET /api/alerts", health.AlertsHandler(e))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON renders v with an application/json content type.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	ids, err := s.store.List()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, ids)
}

func (s *Server) handleRecord(w http.ResponseWriter, r *http.Request) {
	rec, err := s.store.GetRecord(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, rec)
}

func (s *Server) handleDOT(w http.ResponseWriter, r *http.Request) {
	rec, err := s.store.GetRecord(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	g, err := genome.Parse(rec.Genome, rec.NodesPerPhase)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	dot, err := analyzer.GenomeDOT(g, nil)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	fmt.Fprint(w, dot)
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	beam := r.URL.Query().Get("beam")
	sum, err := s.cache.get("summary:"+beam, func() (any, error) {
		return s.store.Summarize(beam)
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, sum)
}

func (s *Server) handlePareto(w http.ResponseWriter, r *http.Request) {
	beam := r.URL.Query().Get("beam")
	front, err := s.cache.get("pareto:"+beam, func() (any, error) {
		models, err := s.loadModels(beam)
		if err != nil {
			return nil, err
		}
		return analyzer.ParetoFrontier(models), nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, front)
}

// loadModels reconstructs ModelResults from record trails.
func (s *Server) loadModels(beam string) ([]*core.ModelResult, error) {
	recs, err := s.store.Query(func(r *lineage.Record) bool {
		return beam == "" || r.Beam == beam
	})
	if err != nil {
		return nil, err
	}
	models := make([]*core.ModelResult, 0, len(recs))
	for _, r := range recs {
		g, err := genome.Parse(r.Genome, r.NodesPerPhase)
		if err != nil {
			return nil, fmt.Errorf("record %s: %w", r.ID, err)
		}
		models = append(models, &core.ModelResult{
			Genome:  g,
			Record:  r,
			Fitness: r.FinalFitness,
			MFLOPs:  float64(r.FLOPs) / 1e6,
		})
	}
	return models, nil
}

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>A4NN data commons</title>
<style>
body { font-family: monospace; margin: 2rem; }
table { border-collapse: collapse; }
td, th { border: 1px solid #999; padding: 0.3rem 0.6rem; text-align: left; }
</style></head><body>
<h1>A4NN data commons</h1>
<p>{{.Records}} record trails · {{.TerminatedEarly}} terminated early ·
mean fitness {{printf "%.2f" .MeanFinalFitness}}% ·
best {{printf "%.2f" .BestFinalFitness}}% ·
{{printf "%.1f" .Hours}} simulated hours</p>
<table>
<tr><th>model</th><th>beam</th><th>fitness %</th><th>MFLOPs</th><th>epochs</th><th>terminated</th><th>curve</th></tr>
{{range .Rows}}<tr>
<td><a href="/api/records/{{.ID}}">{{.ID}}</a></td>
<td>{{.Beam}}</td><td>{{printf "%.2f" .Fitness}}</td>
<td>{{printf "%.1f" .MFLOPs}}</td><td>{{.Epochs}}</td><td>{{.Terminated}}</td>
<td>{{.Spark}}</td>
</tr>{{end}}
</table>
<p>API: <a href="/api/records">/api/records</a> ·
<a href="/api/summary">/api/summary</a> ·
<a href="/api/pareto">/api/pareto</a></p>
</body></html>`))

type indexRow struct {
	ID, Beam   string
	Fitness    float64
	MFLOPs     float64
	Epochs     int
	Terminated bool
	Spark      string
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	sum, err := s.store.Summarize("")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	recs, err := s.store.All()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data := struct {
		commons.Summary
		Hours float64
		Rows  []indexRow
	}{Summary: sum, Hours: sum.TotalSimSeconds / 3600}
	for _, rec := range recs {
		data.Rows = append(data.Rows, indexRow{
			ID:         rec.ID,
			Beam:       rec.Beam,
			Fitness:    rec.FinalFitness,
			MFLOPs:     float64(rec.FLOPs) / 1e6,
			Epochs:     rec.EpochsTrained(),
			Terminated: rec.Terminated,
			Spark:      analyzer.Sparkline(rec.FitnessHistory()),
		})
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var sb strings.Builder
	if err := indexTmpl.Execute(&sb, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprint(w, sb.String())
}
