package webui

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"a4nn/internal/commons"
	"a4nn/internal/lineage"
)

func testStore(t *testing.T) *commons.Store {
	t.Helper()
	store, err := commons.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range []*lineage.Record{
		{ID: "m1", Genome: "1010001|0000000|1111111", NodesPerPhase: 4, Beam: "low",
			FinalFitness: 92.5, FLOPs: 4.2e8, Terminated: true, TerminationEpoch: 2,
			Epochs: []lineage.EpochEntry{
				{Epoch: 1, ValAccuracy: 70, SimSeconds: 5},
				{Epoch: 2, ValAccuracy: 88, Prediction: 92.5, HasPrediction: true, SimSeconds: 5},
			}},
		{ID: "m2", Genome: "0000000|0000000|0000000", NodesPerPhase: 4, Beam: "high",
			FinalFitness: 99.1, FLOPs: 3.1e8,
			Epochs: []lineage.EpochEntry{{Epoch: 1, ValAccuracy: 99.1, SimSeconds: 4}}},
	} {
		r.CreatedAt = time.Now()
		if err := store.PutRecord(r); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	return store
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := New(testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 64*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

func TestNewNilStore(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil store must fail")
	}
}

func TestRecordsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	code, body := get(t, ts.URL+"/api/records")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var ids []string
	if err := json.Unmarshal([]byte(body), &ids); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "m1" {
		t.Fatalf("ids %v", ids)
	}
}

func TestRecordEndpoint(t *testing.T) {
	ts := newTestServer(t)
	code, body := get(t, ts.URL+"/api/records/m1")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var rec lineage.Record
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.FinalFitness != 92.5 || len(rec.Epochs) != 2 {
		t.Fatalf("record %+v", rec)
	}
	code, _ = get(t, ts.URL+"/api/records/nope")
	if code != 404 {
		t.Fatalf("missing record status %d", code)
	}
}

func TestDOTEndpoint(t *testing.T) {
	ts := newTestServer(t)
	code, body := get(t, ts.URL+"/api/records/m1/dot")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "digraph") {
		t.Fatalf("dot body:\n%s", body)
	}
}

func TestSummaryEndpoint(t *testing.T) {
	ts := newTestServer(t)
	code, body := get(t, ts.URL+"/api/summary?beam=low")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var sum commons.Summary
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Records != 1 || sum.TerminatedEarly != 1 {
		t.Fatalf("summary %+v", sum)
	}
}

func TestParetoEndpoint(t *testing.T) {
	ts := newTestServer(t)
	code, body := get(t, ts.URL+"/api/pareto")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "m2") {
		t.Fatalf("pareto body:\n%s", body)
	}
}

func TestIndexPage(t *testing.T) {
	ts := newTestServer(t)
	code, body := get(t, ts.URL+"/")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"A4NN data commons", "m1", "m2", "/api/records"} {
		if !strings.Contains(body, want) {
			t.Fatalf("index missing %q", want)
		}
	}
	// Unknown paths 404.
	code, _ = get(t, ts.URL+"/nope")
	if code != 404 {
		t.Fatalf("unknown path status %d", code)
	}
}
