package xfel

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strconv"
)

// BeamIntensity is the XFEL pulse intensity in photons/µm²/pulse. It
// controls the Poisson photon statistics of the recorded patterns and is
// therefore a direct noise proxy: the lower the intensity, the noisier the
// image (paper §3.1, Figure 5).
type BeamIntensity float64

// The three intensities evaluated in the paper.
const (
	LowBeam    BeamIntensity = 1e14
	MediumBeam BeamIntensity = 1e15
	HighBeam   BeamIntensity = 1e16
)

// AllBeams lists the paper's three beam intensities in evaluation order.
var AllBeams = []BeamIntensity{LowBeam, MediumBeam, HighBeam}

// String implements fmt.Stringer.
func (b BeamIntensity) String() string {
	switch b {
	case LowBeam:
		return "low"
	case MediumBeam:
		return "medium"
	case HighBeam:
		return "high"
	default:
		return fmt.Sprintf("%.3g", float64(b))
	}
}

// MarshalJSON implements json.Marshaler: the paper's beams serialise by
// name ("low"/"medium"/"high"), others by value.
func (b BeamIntensity) MarshalJSON() ([]byte, error) {
	return json.Marshal(b.String())
}

// UnmarshalJSON implements json.Unmarshaler, accepting either a beam name
// or a numeric intensity.
func (b *BeamIntensity) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := ParseBeam(s)
		if err != nil {
			// Non-standard name: try the numeric rendering.
			f, ferr := strconv.ParseFloat(s, 64)
			if ferr != nil {
				return err
			}
			*b = BeamIntensity(f)
			return nil
		}
		*b = v
		return nil
	}
	var f float64
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("xfel: cannot decode beam intensity from %s", data)
	}
	*b = BeamIntensity(f)
	return nil
}

// ParseBeam converts the names used on command lines ("low", "medium",
// "high") to an intensity.
func ParseBeam(s string) (BeamIntensity, error) {
	switch s {
	case "low":
		return LowBeam, nil
	case "medium":
		return MediumBeam, nil
	case "high":
		return HighBeam, nil
	}
	return 0, fmt.Errorf("xfel: unknown beam intensity %q (want low, medium, or high)", s)
}

// photonBudget converts a beam intensity to the mean number of photons
// recorded over the whole detector. The mapping is calibrated so the low
// beam yields sparse, heavily quantised patterns and the high beam is
// nearly noise-free, matching Figure 5's qualitative progression.
func (b BeamIntensity) photonBudget() float64 {
	// log10 scale: 1e14 → 2e3 photons, 1e15 → 2e4, 1e16 → 2e5.
	return 2e3 * float64(b) / 1e14
}

// poisson draws from a Poisson distribution with mean lambda. Knuth's
// method is used for small lambda; a Gaussian approximation (clamped at
// zero) for large lambda keeps generation O(1).
func poisson(rng *rand.Rand, lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return math.Round(v)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return float64(k)
		}
		k++
	}
}
