package xfel

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
)

// Pattern is one recorded diffraction image: normalised pixel values in
// [0, ~1], the conformation label, and the beam that produced it.
type Pattern struct {
	Pixels []float64 // row-major Size×Size
	Size   int
	Label  Conformation
	Beam   BeamIntensity
}

// ASCII renders the pattern as text with a 10-level intensity ramp, for
// terminal previews.
func (p *Pattern) ASCII() string {
	ramp := []byte(" .:-=+*#%@")
	var sb strings.Builder
	for y := 0; y < p.Size; y++ {
		for x := 0; x < p.Size; x++ {
			v := p.Pixels[y*p.Size+x]
			i := int(v * float64(len(ramp)-1))
			if i < 0 {
				i = 0
			}
			if i >= len(ramp) {
				i = len(ramp) - 1
			}
			sb.WriteByte(ramp[i])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SimulatorParams configures pattern synthesis.
type SimulatorParams struct {
	// Size is the detector edge length in pixels (patterns are Size×Size).
	Size int
	// QMax is the maximum scattering-vector magnitude at the detector
	// edge; it sets the resolution of the recorded pattern.
	QMax float64
	// OrientationSpread scales the random beam orientations: 1 samples
	// uniformly from SO(3) (the paper's full Xmipp protocol, which needs
	// ~64k images to learn), 0 fixes the orientation, and intermediate
	// values draw bounded azimuth/tilt angles. Laptop-scale datasets of a
	// few hundred images are learnable around 0.15–0.3.
	OrientationSpread float64
	// BeamstopRadius masks the detector centre (in pixels): real XFEL
	// detectors carry a beamstop that blocks the direct beam, so the
	// strongest low-q signal is never recorded. 0 disables the mask.
	BeamstopRadius float64
	// Protein configures the conformations.
	Protein ProteinParams
}

// DefaultSimulatorParams returns a laptop-scale configuration: 32×32
// detectors with enough q-range that the two conformations are separable
// at high beam intensity but ambiguous under low-beam Poisson noise.
func DefaultSimulatorParams() SimulatorParams {
	return SimulatorParams{Size: 32, QMax: 1.8, OrientationSpread: 0.2, Protein: DefaultProteinParams()}
}

// Validate reports the first problem with the parameters, or nil.
func (p SimulatorParams) Validate() error {
	if p.Size < 4 {
		return fmt.Errorf("xfel: detector size must be ≥ 4, got %d", p.Size)
	}
	if p.QMax <= 0 {
		return fmt.Errorf("xfel: QMax must be positive, got %v", p.QMax)
	}
	if p.OrientationSpread < 0 || p.OrientationSpread > 1 {
		return fmt.Errorf("xfel: OrientationSpread %v outside [0,1]", p.OrientationSpread)
	}
	if p.BeamstopRadius < 0 || p.BeamstopRadius > float64(p.Size)/2 {
		return fmt.Errorf("xfel: BeamstopRadius %v outside [0, %d]", p.BeamstopRadius, p.Size/2)
	}
	return p.Protein.Validate()
}

// Simulator generates diffraction patterns for the conformations of one
// synthetic protein (two by default, the paper's pair). It is safe for
// concurrent use once constructed.
type Simulator struct {
	params SimulatorParams
	confs  []*Protein
}

// NewSimulator builds the protein conformations deterministically from
// seed and returns a simulator.
func NewSimulator(seed int64, params SimulatorParams) (*Simulator, error) {
	if params.Protein.NumConformations == 0 {
		params.Protein.NumConformations = 2
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	confs, err := GenerateConformationSet(rng, params.Protein)
	if err != nil {
		return nil, err
	}
	return &Simulator{params: params, confs: confs}, nil
}

// Params returns the simulator's configuration.
func (s *Simulator) Params() SimulatorParams { return s.params }

// NumConformations returns the number of protein classes.
func (s *Simulator) NumConformations() int { return len(s.confs) }

// Conformation returns the protein model for a label.
func (s *Simulator) Conformation(c Conformation) (*Protein, error) {
	if int(c) < 0 || int(c) >= len(s.confs) {
		return nil, fmt.Errorf("xfel: unknown conformation %d", int(c))
	}
	return s.confs[int(c)], nil
}

// intensityField computes the noiseless diffraction intensity |F(q)|² of
// the atoms on the detector grid. q spans [−QMax, QMax]² with a flat
// Ewald-sphere approximation (q_z = 0), the standard small-angle limit.
func (s *Simulator) intensityField(atoms []Atom) []float64 {
	n := s.params.Size
	out := make([]float64, n*n)
	step := 2 * s.params.QMax / float64(n-1)
	for py := 0; py < n; py++ {
		qy := -s.params.QMax + float64(py)*step
		for px := 0; px < n; px++ {
			qx := -s.params.QMax + float64(px)*step
			var re, im float64
			for _, a := range atoms {
				phase := qx*a.X + qy*a.Y
				sin, cos := math.Sincos(phase)
				re += a.Weight * cos
				im += a.Weight * sin
			}
			out[py*n+px] = re*re + im*im
		}
	}
	return out
}

// Generate produces one diffraction pattern: the protein in a random
// orientation, the intensity field scaled to the beam's photon budget,
// Poisson-sampled photon counts, and a log(1+k) normalisation that maps
// counts into a stable [0, ~1] range for NN training.
func (s *Simulator) Generate(rng *rand.Rand, label Conformation, beam BeamIntensity) (*Pattern, error) {
	prot, err := s.Conformation(label)
	if err != nil {
		return nil, err
	}
	rot := sampleOrientation(rng, s.params.OrientationSpread)
	field := s.intensityField(rot.apply(prot.Atoms))

	total := 0.0
	for _, v := range field {
		total += v
	}
	if total <= 0 {
		return nil, fmt.Errorf("xfel: degenerate intensity field")
	}
	budget := beam.photonBudget()
	scale := budget / total

	n := s.params.Size
	pix := make([]float64, n*n)
	// Normalisation reference: the expected peak count at this beam, so
	// pixel values stay comparable across orientations and intensities.
	maxLambda := 0.0
	for _, v := range field {
		if l := v * scale; l > maxLambda {
			maxLambda = l
		}
	}
	denom := math.Log1p(maxLambda)
	if denom <= 0 {
		denom = 1
	}
	centre := float64(n-1) / 2
	r2 := s.params.BeamstopRadius * s.params.BeamstopRadius
	for i, v := range field {
		if r2 > 0 {
			dy := float64(i/n) - centre
			dx := float64(i%n) - centre
			if dy*dy+dx*dx <= r2 {
				continue // beamstop: pixel stays zero
			}
		}
		counts := poisson(rng, v*scale)
		pix[i] = math.Log1p(counts) / denom
	}
	return &Pattern{Pixels: pix, Size: n, Label: label, Beam: beam}, nil
}

// GenerateBatch produces count patterns with balanced conformation labels
// (paper §3.2 trains on balanced classes), parallelised across
// GOMAXPROCS workers. Results are deterministic for a given seed: each
// pattern draws from its own rng seeded by (seed, index).
func (s *Simulator) GenerateBatch(seed int64, count int, beam BeamIntensity) ([]*Pattern, error) {
	if count <= 0 {
		return nil, fmt.Errorf("xfel: pattern count must be positive, got %d", count)
	}
	out := make([]*Pattern, count)
	errs := make([]error, count)
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (count + workers - 1) / workers
	for lo := 0; lo < count; lo += chunk {
		hi := lo + chunk
		if hi > count {
			hi = count
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				rng := rand.New(rand.NewSource(seed + int64(i)*7919))
				label := Conformation(i % len(s.confs))
				p, err := s.Generate(rng, label, beam)
				out[i], errs[i] = p, err
			}
		}(lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
