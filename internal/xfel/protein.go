// Package xfel synthesises X-ray Free Electron Laser protein diffraction
// datasets, substituting for the paper's spsim/Xmipp pipeline (paper §3.1).
//
// Two 3-D point-atom "conformations" of the same synthetic protein — one
// with a rotated mobile domain, mimicking the EF2 conformations 1n0u and
// 1n0v — are exposed to a simulated beam: the protein is randomly oriented,
// its far-field diffraction intensity |F(q)|² is sampled on a square
// detector, and photon counts are drawn from a Poisson distribution whose
// rate scales with the beam intensity. Intensity is therefore a direct
// noise proxy: the paper's low/medium/high beams (1e14/1e15/1e16
// photons/µm²/pulse) map to low/medium/high signal-to-noise images, which
// is exactly the dataset property the evaluation depends on.
package xfel

import (
	"fmt"
	"math"
	"math/rand"
)

// Atom is a point scatterer: a 3-D position (in ångström-like arbitrary
// units) and a scattering weight (effective electron count).
type Atom struct {
	X, Y, Z float64
	Weight  float64
}

// Conformation identifies which protein shape produced a pattern; it is
// the classification label.
type Conformation int

// The two conformations of the synthetic protein, standing in for PDB
// entries 1n0u (A) and 1n0v (B).
const (
	ConfA Conformation = 0
	ConfB Conformation = 1
)

// String implements fmt.Stringer.
func (c Conformation) String() string {
	switch c {
	case ConfA:
		return "conf-A"
	case ConfB:
		return "conf-B"
	default:
		return fmt.Sprintf("conf-%d", int(c))
	}
}

// Protein is a rigid point-atom model.
type Protein struct {
	Atoms []Atom
}

// ProteinParams controls the synthetic protein generator.
type ProteinParams struct {
	// CoreAtoms and DomainAtoms set the number of atoms in the fixed core
	// and in the mobile domain.
	CoreAtoms, DomainAtoms int
	// CoreRadius and DomainRadius are the Gaussian cluster radii.
	CoreRadius, DomainRadius float64
	// DomainOffset displaces the mobile domain from the core along +x.
	DomainOffset float64
	// HingeAngle is the rotation (radians) applied to the mobile domain to
	// produce conformation B from conformation A; conformation k is
	// rotated by k·HingeAngle.
	HingeAngle float64
	// NumConformations is the number of protein classes (default 2, the
	// paper's 1n0u/1n0v pair; larger values extend the task to
	// multi-class classification, the §6 generalisation).
	NumConformations int
}

// DefaultProteinParams mirrors a two-domain protein whose conformations
// differ by a ~35° domain rotation about the hinge.
func DefaultProteinParams() ProteinParams {
	return ProteinParams{
		CoreAtoms:        40,
		DomainAtoms:      24,
		CoreRadius:       3.0,
		DomainRadius:     2.0,
		DomainOffset:     6.0,
		HingeAngle:       35 * math.Pi / 180,
		NumConformations: 2,
	}
}

// Validate reports the first problem with the parameters, or nil.
func (p ProteinParams) Validate() error {
	if p.CoreAtoms <= 0 || p.DomainAtoms <= 0 {
		return fmt.Errorf("xfel: atom counts must be positive, got core=%d domain=%d", p.CoreAtoms, p.DomainAtoms)
	}
	if p.CoreRadius <= 0 || p.DomainRadius <= 0 {
		return fmt.Errorf("xfel: cluster radii must be positive, got %v and %v", p.CoreRadius, p.DomainRadius)
	}
	if p.NumConformations < 2 {
		return fmt.Errorf("xfel: need ≥ 2 conformations, got %d", p.NumConformations)
	}
	return nil
}

// GenerateConformations builds the two conformations of one synthetic
// protein deterministically from the rng (the paper's pair). Both share
// the identical core and mobile-domain atoms; conformation B's domain is
// rotated about the z-axis through the hinge (the domain attachment
// point).
func GenerateConformations(rng *rand.Rand, p ProteinParams) (confA, confB *Protein, err error) {
	all, err := GenerateConformationSet(rng, p)
	if err != nil {
		return nil, nil, err
	}
	return all[0], all[1], nil
}

// GenerateConformationSet builds p.NumConformations conformations:
// conformation k's mobile domain is rotated by k·HingeAngle about the
// hinge. All conformations share identical atoms, so only the domain
// orientation separates the classes.
func GenerateConformationSet(rng *rand.Rand, p ProteinParams) ([]*Protein, error) {
	if p.NumConformations == 0 {
		p.NumConformations = 2
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	core := make([]Atom, p.CoreAtoms)
	for i := range core {
		core[i] = Atom{
			X:      rng.NormFloat64() * p.CoreRadius,
			Y:      rng.NormFloat64() * p.CoreRadius,
			Z:      rng.NormFloat64() * p.CoreRadius,
			Weight: 0.8 + 0.4*rng.Float64(),
		}
	}
	domain := make([]Atom, p.DomainAtoms)
	for i := range domain {
		domain[i] = Atom{
			X:      p.DomainOffset + rng.NormFloat64()*p.DomainRadius,
			Y:      rng.NormFloat64() * p.DomainRadius,
			Z:      rng.NormFloat64() * p.DomainRadius,
			Weight: 0.8 + 0.4*rng.Float64(),
		}
	}

	hx := p.DomainOffset / 2
	confs := make([]*Protein, p.NumConformations)
	for k := range confs {
		angle := float64(k) * p.HingeAngle
		sin, cos := math.Sin(angle), math.Cos(angle)
		rotated := make([]Atom, len(domain))
		for i, at := range domain {
			dx, dy := at.X-hx, at.Y
			rotated[i] = Atom{
				X:      hx + cos*dx - sin*dy,
				Y:      sin*dx + cos*dy,
				Z:      at.Z,
				Weight: at.Weight,
			}
		}
		confs[k] = &Protein{Atoms: append(append([]Atom(nil), core...), rotated...)}
	}
	return confs, nil
}

// rotation is a 3×3 rotation matrix.
type rotation [3][3]float64

// randomRotation draws a rotation uniformly from SO(3) via a random unit
// quaternion (Shoemake's method).
func randomRotation(rng *rand.Rand) rotation {
	u1, u2, u3 := rng.Float64(), rng.Float64(), rng.Float64()
	s1 := math.Sqrt(1 - u1)
	s2 := math.Sqrt(u1)
	w := s1 * math.Sin(2*math.Pi*u2)
	x := s1 * math.Cos(2*math.Pi*u2)
	y := s2 * math.Sin(2*math.Pi*u3)
	z := s2 * math.Cos(2*math.Pi*u3)
	return rotation{
		{1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y)},
		{2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x)},
		{2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y)},
	}
}

// sampleOrientation draws a beam orientation. spread=1 is uniform SO(3);
// smaller values bound the azimuth to ±spread·π and the two tilts to
// ±spread·π/2, shrinking the orientation manifold so small datasets stay
// learnable (see SimulatorParams.OrientationSpread).
func sampleOrientation(rng *rand.Rand, spread float64) rotation {
	if spread >= 1 {
		return randomRotation(rng)
	}
	az := (rng.Float64()*2 - 1) * math.Pi * spread
	tx := (rng.Float64()*2 - 1) * math.Pi / 2 * spread
	ty := (rng.Float64()*2 - 1) * math.Pi / 2 * spread
	return rotZ(az).mul(rotX(tx)).mul(rotY(ty))
}

// rotZ, rotX, rotY build elementary rotations.
func rotZ(a float64) rotation {
	s, c := math.Sin(a), math.Cos(a)
	return rotation{{c, -s, 0}, {s, c, 0}, {0, 0, 1}}
}

func rotX(a float64) rotation {
	s, c := math.Sin(a), math.Cos(a)
	return rotation{{1, 0, 0}, {0, c, -s}, {0, s, c}}
}

func rotY(a float64) rotation {
	s, c := math.Sin(a), math.Cos(a)
	return rotation{{c, 0, s}, {0, 1, 0}, {-s, 0, c}}
}

// mul composes two rotations (r then o applied to column vectors: r·o).
func (r rotation) mul(o rotation) rotation {
	var out rotation
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				out[i][j] += r[i][k] * o[k][j]
			}
		}
	}
	return out
}

// apply rotates atom positions, leaving weights unchanged.
func (r rotation) apply(atoms []Atom) []Atom {
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		out[i] = Atom{
			X:      r[0][0]*a.X + r[0][1]*a.Y + r[0][2]*a.Z,
			Y:      r[1][0]*a.X + r[1][1]*a.Y + r[1][2]*a.Z,
			Z:      r[2][0]*a.X + r[2][1]*a.Y + r[2][2]*a.Z,
			Weight: a.Weight,
		}
	}
	return out
}
