package xfel

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestGenerateConformationsDiffer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b, err := GenerateConformations(rng, DefaultProteinParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Atoms) != len(b.Atoms) {
		t.Fatalf("atom counts differ: %d vs %d", len(a.Atoms), len(b.Atoms))
	}
	p := DefaultProteinParams()
	// Core atoms identical; at least one domain atom moved.
	for i := 0; i < p.CoreAtoms; i++ {
		if a.Atoms[i] != b.Atoms[i] {
			t.Fatalf("core atom %d differs between conformations", i)
		}
	}
	moved := false
	for i := p.CoreAtoms; i < len(a.Atoms); i++ {
		if a.Atoms[i] != b.Atoms[i] {
			moved = true
		}
		if a.Atoms[i].Weight != b.Atoms[i].Weight {
			t.Fatalf("domain atom %d weight changed by rotation", i)
		}
		// Rigid rotation about a z-axis hinge preserves z.
		if a.Atoms[i].Z != b.Atoms[i].Z {
			t.Fatalf("domain atom %d z changed by hinge rotation", i)
		}
	}
	if !moved {
		t.Fatal("conformations identical")
	}
}

func TestGenerateConformationsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := DefaultProteinParams()
	p.CoreAtoms = 0
	if _, _, err := GenerateConformations(rng, p); err == nil {
		t.Fatal("expected validation error")
	}
	p = DefaultProteinParams()
	p.CoreRadius = 0
	if _, _, err := GenerateConformations(rng, p); err == nil {
		t.Fatal("expected radius error")
	}
}

func TestRandomRotationIsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		r := randomRotation(rng)
		// Rows must be orthonormal.
		for i := 0; i < 3; i++ {
			norm := r[i][0]*r[i][0] + r[i][1]*r[i][1] + r[i][2]*r[i][2]
			if math.Abs(norm-1) > 1e-9 {
				t.Fatalf("row %d norm %v", i, norm)
			}
			for j := i + 1; j < 3; j++ {
				dot := r[i][0]*r[j][0] + r[i][1]*r[j][1] + r[i][2]*r[j][2]
				if math.Abs(dot) > 1e-9 {
					t.Fatalf("rows %d,%d not orthogonal: %v", i, j, dot)
				}
			}
		}
		// Determinant must be +1 (proper rotation).
		det := r[0][0]*(r[1][1]*r[2][2]-r[1][2]*r[2][1]) -
			r[0][1]*(r[1][0]*r[2][2]-r[1][2]*r[2][0]) +
			r[0][2]*(r[1][0]*r[2][1]-r[1][1]*r[2][0])
		if math.Abs(det-1) > 1e-9 {
			t.Fatalf("determinant %v", det)
		}
	}
}

func TestRotationPreservesDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	atoms := []Atom{{1, 2, 3, 1}, {-4, 0, 2, 1}, {0.5, -1, 0, 1}}
	r := randomRotation(rng)
	rot := r.apply(atoms)
	for i := range atoms {
		for j := i + 1; j < len(atoms); j++ {
			d0 := dist(atoms[i], atoms[j])
			d1 := dist(rot[i], rot[j])
			if math.Abs(d0-d1) > 1e-9 {
				t.Fatalf("distance %d-%d changed: %v vs %v", i, j, d0, d1)
			}
		}
	}
}

func dist(a, b Atom) float64 {
	dx, dy, dz := a.X-b.X, a.Y-b.Y, a.Z-b.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

func TestBeamParsingAndNames(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want BeamIntensity
	}{{"low", LowBeam}, {"medium", MediumBeam}, {"high", HighBeam}} {
		got, err := ParseBeam(tc.s)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBeam(%q) = %v, %v", tc.s, got, err)
		}
		if got.String() != tc.s {
			t.Fatalf("String() = %q, want %q", got.String(), tc.s)
		}
	}
	if _, err := ParseBeam("ultra"); err == nil {
		t.Fatal("expected parse error")
	}
	if BeamIntensity(5e14).String() == "" {
		t.Fatal("non-standard beam must still render")
	}
}

func TestPhotonBudgetOrdering(t *testing.T) {
	if !(LowBeam.photonBudget() < MediumBeam.photonBudget() &&
		MediumBeam.photonBudget() < HighBeam.photonBudget()) {
		t.Fatal("photon budget must grow with intensity")
	}
}

func TestPoissonStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, lambda := range []float64{0.5, 3, 20, 100} {
		n := 20000
		sum, sum2 := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := poisson(rng, lambda)
			if v < 0 {
				t.Fatalf("negative count %v", v)
			}
			sum += v
			sum2 += v * v
		}
		mean := sum / float64(n)
		variance := sum2/float64(n) - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.2 {
			t.Fatalf("lambda=%v: mean %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.15*lambda+0.5 {
			t.Fatalf("lambda=%v: variance %v", lambda, variance)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("non-positive lambda must give 0")
	}
}

func TestSimulatorValidation(t *testing.T) {
	p := DefaultSimulatorParams()
	p.Size = 2
	if _, err := NewSimulator(1, p); err == nil {
		t.Fatal("expected size error")
	}
	p = DefaultSimulatorParams()
	p.QMax = 0
	if _, err := NewSimulator(1, p); err == nil {
		t.Fatal("expected qmax error")
	}
}

func TestGeneratePattern(t *testing.T) {
	sim, err := NewSimulator(7, DefaultSimulatorParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	pat, err := sim.Generate(rng, ConfA, HighBeam)
	if err != nil {
		t.Fatal(err)
	}
	if pat.Size != 32 || len(pat.Pixels) != 32*32 {
		t.Fatalf("pattern geometry %d / %d", pat.Size, len(pat.Pixels))
	}
	if pat.Label != ConfA || pat.Beam != HighBeam {
		t.Fatalf("pattern metadata %+v", pat)
	}
	nonzero := 0
	for _, v := range pat.Pixels {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("invalid pixel %v", v)
		}
		if v > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("pattern is all zeros")
	}
	if _, err := sim.Generate(rng, Conformation(9), HighBeam); err == nil {
		t.Fatal("unknown conformation must error")
	}
}

// TestNoiseDecreasesWithBeam: low beam patterns must be sparser (more
// zero-photon pixels) than high beam ones — the paper's noise proxy.
func TestNoiseDecreasesWithBeam(t *testing.T) {
	sim, err := NewSimulator(7, DefaultSimulatorParams())
	if err != nil {
		t.Fatal(err)
	}
	frac := func(beam BeamIntensity) float64 {
		zero := 0
		total := 0
		for i := 0; i < 10; i++ {
			rng := rand.New(rand.NewSource(int64(100 + i)))
			p, err := sim.Generate(rng, ConfA, beam)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range p.Pixels {
				if v == 0 {
					zero++
				}
				total++
			}
		}
		return float64(zero) / float64(total)
	}
	low, high := frac(LowBeam), frac(HighBeam)
	if low <= high {
		t.Fatalf("zero-pixel fraction low=%v must exceed high=%v", low, high)
	}
}

// TestConformationsSeparableAtHighBeam: with identical orientation, the
// two conformations must give distinguishable noiseless fields.
func TestConformationsSeparable(t *testing.T) {
	sim, err := NewSimulator(7, DefaultSimulatorParams())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sim.Conformation(ConfA)
	b, _ := sim.Conformation(ConfB)
	fa := sim.intensityField(a.Atoms)
	fb := sim.intensityField(b.Atoms)
	diff, norm := 0.0, 0.0
	for i := range fa {
		d := fa[i] - fb[i]
		diff += d * d
		norm += fa[i] * fa[i]
	}
	if diff/norm < 1e-3 {
		t.Fatalf("conformations nearly identical: rel diff %v", diff/norm)
	}
}

func TestGenerateBatchDeterministicAndBalanced(t *testing.T) {
	sim, err := NewSimulator(7, DefaultSimulatorParams())
	if err != nil {
		t.Fatal(err)
	}
	b1, err := sim.GenerateBatch(55, 20, MediumBeam)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := sim.GenerateBatch(55, 20, MediumBeam)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Conformation]int{}
	for i := range b1 {
		counts[b1[i].Label]++
		for j := range b1[i].Pixels {
			if b1[i].Pixels[j] != b2[i].Pixels[j] {
				t.Fatal("GenerateBatch must be deterministic for a seed")
			}
		}
	}
	if counts[ConfA] != 10 || counts[ConfB] != 10 {
		t.Fatalf("labels unbalanced: %v", counts)
	}
	if _, err := sim.GenerateBatch(1, 0, MediumBeam); err == nil {
		t.Fatal("count=0 must error")
	}
}

func BenchmarkGeneratePattern(b *testing.B) {
	sim, err := NewSimulator(7, DefaultSimulatorParams())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Generate(rng, ConfA, MediumBeam); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPatternASCII(t *testing.T) {
	p := &Pattern{Size: 2, Pixels: []float64{0, 0.5, 1, 2}}
	out := p.ASCII()
	lines := []byte(out)
	if len(lines) != 6 { // 2 rows × (2 chars + newline)
		t.Fatalf("ascii length %d: %q", len(lines), out)
	}
	if lines[0] != ' ' {
		t.Fatalf("zero intensity must render blank, got %q", lines[0])
	}
	if lines[3] != '@' || lines[4] != '@' {
		t.Fatalf("max/overflow intensity must render '@': %q", out)
	}
}

func TestBeamstopMasksCentre(t *testing.T) {
	p := DefaultSimulatorParams()
	p.BeamstopRadius = 4
	sim, err := NewSimulator(7, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	pat, err := sim.Generate(rng, ConfA, HighBeam)
	if err != nil {
		t.Fatal(err)
	}
	c := pat.Size / 2
	// All pixels within the beamstop radius are zero; the centre of an
	// unmasked pattern is the brightest region, so this is a real change.
	for dy := -3; dy <= 3; dy++ {
		for dx := -3; dx <= 3; dx++ {
			if dy*dy+dx*dx > 9 {
				continue
			}
			if v := pat.Pixels[(c+dy)*pat.Size+c+dx]; v != 0 {
				t.Fatalf("beamstop pixel (%d,%d) = %v", c+dy, c+dx, v)
			}
		}
	}
	// Signal survives outside the mask.
	nonzero := 0
	for _, v := range pat.Pixels {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("beamstop wiped the whole pattern")
	}
	p.BeamstopRadius = 100
	if _, err := NewSimulator(7, p); err == nil {
		t.Fatal("oversized beamstop must fail validation")
	}
}

func TestMultiConformation(t *testing.T) {
	p := DefaultSimulatorParams()
	p.Protein.NumConformations = 4
	sim, err := NewSimulator(7, p)
	if err != nil {
		t.Fatal(err)
	}
	if sim.NumConformations() != 4 {
		t.Fatalf("NumConformations = %d", sim.NumConformations())
	}
	// Labels cycle through all four classes, balanced.
	pats, err := sim.GenerateBatch(1, 40, HighBeam)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Conformation]int{}
	for _, pat := range pats {
		counts[pat.Label]++
	}
	for c := Conformation(0); c < 4; c++ {
		if counts[c] != 10 {
			t.Fatalf("class %v has %d samples: %v", c, counts[c], counts)
		}
	}
	// All four conformations are pairwise distinct in diffraction space.
	for a := Conformation(0); a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			pa, _ := sim.Conformation(a)
			pb, _ := sim.Conformation(b)
			fa := sim.intensityField(pa.Atoms)
			fb := sim.intensityField(pb.Atoms)
			diff, norm := 0.0, 0.0
			for i := range fa {
				d := fa[i] - fb[i]
				diff += d * d
				norm += fa[i] * fa[i]
			}
			if diff/norm < 1e-4 {
				t.Fatalf("conformations %v and %v nearly identical", a, b)
			}
		}
	}
	// String names beyond B.
	if Conformation(3).String() != "conf-3" {
		t.Fatalf("name %q", Conformation(3).String())
	}
	p.Protein.NumConformations = 1
	if _, err := NewSimulator(7, p); err == nil {
		t.Fatal("1 conformation must fail")
	}
}

func TestBeamJSONRoundTrip(t *testing.T) {
	for _, b := range append(AllBeams, BeamIntensity(5e14)) {
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		var back BeamIntensity
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != b {
			t.Fatalf("beam %v round-tripped to %v (wire %s)", b, back, data)
		}
	}
	if string(mustJSON(t, LowBeam)) != `"low"` {
		t.Fatal("standard beams must serialise by name")
	}
	// Numeric wire form also accepted.
	var b BeamIntensity
	if err := json.Unmarshal([]byte("1e15"), &b); err != nil || b != MediumBeam {
		t.Fatalf("numeric decode: %v, %v", b, err)
	}
	if err := json.Unmarshal([]byte(`{"x":1}`), &b); err == nil {
		t.Fatal("object must fail to decode")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
