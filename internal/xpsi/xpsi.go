// Package xpsi reimplements the paper's state-of-the-art baseline, the
// X-ray Free Electron Laser-based Protein Structure Identifier of Olaya
// et al. (paper §4.4): an autoencoder learns a compact representation of
// the diffraction patterns and a k-nearest-neighbours classifier predicts
// the conformation in that feature space. XPSI is a fixed, hand-tuned
// pipeline — fast to train once (one model instead of a 100-network
// search) but less robust on noisy low-beam images and unable to scale
// across accelerators, which is exactly the Table 3 comparison.
package xpsi

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"a4nn/internal/dataset"
	"a4nn/internal/nn"
	"a4nn/internal/sched"
	"a4nn/internal/tensor"
)

// Config parameterises the XPSI pipeline.
type Config struct {
	// Hidden is the autoencoder's latent dimensionality (default 32).
	Hidden int
	// Epochs of autoencoder training (default 30).
	Epochs int
	// BatchSize for autoencoder SGD (default 32).
	BatchSize int
	// LR is the autoencoder learning rate (default 0.01).
	LR float64
	// K is the number of neighbours for classification (default 1).
	K int
}

// DefaultConfig returns the defaults above.
func DefaultConfig() Config {
	return Config{Hidden: 32, Epochs: 30, BatchSize: 32, LR: 0.01, K: 1}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Hidden > 0 {
		d.Hidden = c.Hidden
	}
	if c.Epochs > 0 {
		d.Epochs = c.Epochs
	}
	if c.BatchSize > 0 {
		d.BatchSize = c.BatchSize
	}
	if c.LR > 0 {
		d.LR = c.LR
	}
	if c.K > 0 {
		d.K = c.K
	}
	return d
}

// Pipeline is a trained XPSI model.
type Pipeline struct {
	cfg      Config
	inputDim int
	encoder  *nn.Network
	features [][]float64 // training features
	labels   []int
	// TrainFLOPs accumulates the floating-point work of training, for
	// the simulated wall-time accounting of Table 3.
	TrainFLOPs int64
}

// Train fits the autoencoder on the training set and indexes its feature
// space for kNN classification.
func Train(train *dataset.Dataset, cfg Config, seed int64) (*Pipeline, error) {
	c := cfg.withDefaults()
	if train == nil || train.Len() == 0 {
		return nil, fmt.Errorf("xpsi: empty training set")
	}
	if c.K > train.Len() {
		return nil, fmt.Errorf("xpsi: K=%d exceeds training size %d", c.K, train.Len())
	}
	dim := 1
	for _, d := range train.SampleShape() {
		dim *= d
	}
	rng := rand.New(rand.NewSource(seed))

	// Autoencoder: dim → hidden → dim with a linear bottleneck. A linear
	// autoencoder learns the principal subspace of the patterns, which
	// preserves the neighbourhood structure kNN depends on (a ReLU
	// bottleneck discards half the feature space and collapses it).
	enc, err := nn.NewDense(rng, dim, c.Hidden)
	if err != nil {
		return nil, err
	}
	dec, err := nn.NewDense(rng, c.Hidden, dim)
	if err != nil {
		return nil, err
	}
	ae, err := nn.NewNetwork("xpsi-ae", []int{dim}, enc, dec)
	if err != nil {
		return nil, err
	}
	opt, err := nn.NewSGD(c.LR, 0.9, 0)
	if err != nil {
		return nil, err
	}
	var mse nn.MSE

	flat := train.X.MustReshape(train.Len(), dim)
	p := &Pipeline{cfg: c, inputDim: dim}
	perSample := ae.Layers[0].FLOPs([]int{dim}) + ae.Layers[1].FLOPs([]int{c.Hidden})
	for epoch := 0; epoch < c.Epochs; epoch++ {
		order := rng.Perm(train.Len())
		for lo := 0; lo < len(order); lo += c.BatchSize {
			hi := lo + c.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			batch := tensor.New(hi-lo, dim)
			for i := lo; i < hi; i++ {
				copy(batch.Data()[(i-lo)*dim:(i-lo+1)*dim], flat.Data()[order[i]*dim:(order[i]+1)*dim])
			}
			out, err := ae.Forward(batch, true)
			if err != nil {
				return nil, fmt.Errorf("xpsi: epoch %d: %w", epoch+1, err)
			}
			_, grad, err := mse.Loss(out, batch)
			if err != nil {
				return nil, err
			}
			if err := ae.Backward(grad); err != nil {
				return nil, err
			}
			opt.Step(ae.Params())
		}
		p.TrainFLOPs += 3 * perSample * int64(train.Len()) // fwd + ~2× bwd
	}

	// Freeze the encoder for feature extraction.
	encNet, err := nn.NewNetwork("xpsi-enc", []int{dim}, enc)
	if err != nil {
		return nil, err
	}
	p.encoder = encNet
	p.features = make([][]float64, train.Len())
	p.labels = append([]int(nil), train.Labels...)
	feats, err := p.encode(flat)
	if err != nil {
		return nil, err
	}
	p.features = feats
	// Indexing cost: one encoder pass over the training set.
	p.TrainFLOPs += perSample * int64(train.Len())
	return p, nil
}

// encode maps flattened samples (N, dim) to feature vectors.
func (p *Pipeline) encode(flat *tensor.Tensor) ([][]float64, error) {
	out, err := p.encoder.Forward(flat, false)
	if err != nil {
		return nil, err
	}
	n, h := out.Dim(0), out.Dim(1)
	feats := make([][]float64, n)
	for i := 0; i < n; i++ {
		feats[i] = append([]float64(nil), out.Data()[i*h:(i+1)*h]...)
	}
	return feats, nil
}

// Classify predicts the label of each sample in ds by majority vote among
// the K nearest training features (Euclidean distance), parallelised over
// query samples.
func (p *Pipeline) Classify(ds *dataset.Dataset) ([]int, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("xpsi: empty query set")
	}
	dim := 1
	for _, d := range ds.SampleShape() {
		dim *= d
	}
	if dim != p.inputDim {
		return nil, fmt.Errorf("xpsi: query dimension %d does not match training %d", dim, p.inputDim)
	}
	feats, err := p.encode(ds.X.MustReshape(ds.Len(), dim))
	if err != nil {
		return nil, err
	}
	preds := make([]int, len(feats))
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (len(feats) + workers - 1) / workers
	for lo := 0; lo < len(feats); lo += chunk {
		hi := lo + chunk
		if hi > len(feats) {
			hi = len(feats)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				preds[i] = p.vote(feats[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return preds, nil
}

// vote returns the majority label among the K nearest training features.
func (p *Pipeline) vote(q []float64) int {
	type nd struct {
		d   float64
		lbl int
	}
	nds := make([]nd, len(p.features))
	for i, f := range p.features {
		s := 0.0
		for j := range f {
			d := f[j] - q[j]
			s += d * d
		}
		nds[i] = nd{d: s, lbl: p.labels[i]}
	}
	sort.Slice(nds, func(a, b int) bool { return nds[a].d < nds[b].d })
	counts := map[int]int{}
	best, bestCount := 0, -1
	for _, n := range nds[:p.cfg.K] {
		counts[n.lbl]++
		if counts[n.lbl] > bestCount {
			best, bestCount = n.lbl, counts[n.lbl]
		}
	}
	return best
}

// Evaluate returns classification accuracy (percent) on a labelled set.
func (p *Pipeline) Evaluate(ds *dataset.Dataset) (float64, error) {
	preds, err := p.Classify(ds)
	if err != nil {
		return 0, err
	}
	correct := 0
	for i, pr := range preds {
		if pr == ds.Labels[i] {
			correct++
		}
	}
	return 100 * float64(correct) / float64(len(preds)), nil
}

// SimSeconds converts the pipeline's training work into simulated wall
// seconds on the device, the Table 3 wall-time accounting.
func (p *Pipeline) SimSeconds(dev sched.Device) float64 {
	return float64(p.TrainFLOPs) / dev.Throughput
}
