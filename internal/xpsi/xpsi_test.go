package xpsi

import (
	"math/rand"
	"testing"

	"a4nn/internal/dataset"
	"a4nn/internal/sched"
	"a4nn/internal/tensor"
	"a4nn/internal/xfel"
)

// xfelSplit builds a small train/test split at the given beam.
func xfelSplit(t *testing.T, beam xfel.BeamIntensity, n int) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	p := xfel.DefaultSimulatorParams()
	p.Size = 16
	sim, err := xfel.NewSimulator(3, p)
	if err != nil {
		t.Fatal(err)
	}
	pats, err := sim.GenerateBatch(11, n, beam)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.FromPatterns(pats)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := ds.Split(0.8, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Config{}, 1); err == nil {
		t.Fatal("nil dataset must fail")
	}
	x := tensor.New(3, 1, 2, 2)
	small, err := dataset.New(x, []int{0, 1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(small, Config{K: 10}, 1); err == nil {
		t.Fatal("K > n must fail")
	}
}

func TestXPSIClassifiesHighBeam(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	train, test := xfelSplit(t, xfel.HighBeam, 240)
	p, err := Train(train, DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := p.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 80 {
		t.Fatalf("high-beam XPSI accuracy %v, want ≥80", acc)
	}
	if p.TrainFLOPs <= 0 {
		t.Fatal("training FLOPs not accounted")
	}
	if p.SimSeconds(sched.Device{Throughput: 1e12}) <= 0 {
		t.Fatal("sim seconds must be positive")
	}
}

// TestXPSIDegradesWithNoise mirrors Table 3: XPSI's accuracy on low-beam
// (noisy) data is below its high-beam accuracy.
func TestXPSIDegradesWithNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	trainH, testH := xfelSplit(t, xfel.HighBeam, 240)
	trainL, testL := xfelSplit(t, xfel.LowBeam, 240)
	cfg := DefaultConfig()
	ph, err := Train(trainH, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Train(trainL, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	accH, err := ph.Evaluate(testH)
	if err != nil {
		t.Fatal(err)
	}
	accL, err := pl.Evaluate(testL)
	if err != nil {
		t.Fatal(err)
	}
	if accL >= accH {
		t.Fatalf("low-beam accuracy %v should trail high-beam %v", accL, accH)
	}
}

func TestClassifyValidation(t *testing.T) {
	train, _ := xfelSplit(t, xfel.HighBeam, 40)
	p, err := Train(train, Config{Epochs: 2, Hidden: 8, K: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Classify(nil); err == nil {
		t.Fatal("nil query set must fail")
	}
	// Mismatched dimensionality.
	x := tensor.New(2, 1, 4, 4)
	other, err := dataset.New(x, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Classify(other); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
}

func TestVoteMajority(t *testing.T) {
	p := &Pipeline{
		cfg:      Config{K: 3},
		features: [][]float64{{0}, {0.1}, {0.2}, {5}, {5.1}},
		labels:   []int{1, 1, 0, 0, 0},
	}
	if got := p.vote([]float64{0.05}); got != 1 {
		t.Fatalf("vote near cluster 1 = %d", got)
	}
	if got := p.vote([]float64{5.05}); got != 0 {
		t.Fatalf("vote near cluster 0 = %d", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Hidden != 32 || c.Epochs != 30 || c.K != 1 {
		t.Fatalf("defaults %+v", c)
	}
	c = Config{Hidden: 8, K: 1}.withDefaults()
	if c.Hidden != 8 || c.K != 1 || c.Epochs != 30 {
		t.Fatalf("overrides %+v", c)
	}
}
