package a4nn

// End-to-end test of the crash flight recorder: boot a4nn-serve -jobs
// with an armed chaos plan, let the injected kill take the process
// down mid-generation, and assert the dying job left a decodable
// postmortem bundle whose event ring agrees with the durable journal
// tail — then relaunch with -resume and let the job finish anyway.

import (
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestPostmortemOnChaosKill(t *testing.T) {
	if testing.Short() {
		t.Skip("postmortem e2e in -short mode")
	}
	bins := buildTools(t, "a4nn-serve", "a4nn-analyze")
	store := scratchDir(t, "store")
	jobDir := filepath.Join(store, "jobs", "pm-job")

	// The crash plan kills the process (exit 86) at the second
	// generation commit; the SLO flag rides along to exercise the
	// -jobs objective plumbing on the same boot.
	p := startServe(t, bins["a4nn-serve"], store,
		"-chaos", "crash=core.generation.commit@2;seed=7",
		"-slo", "queue_wait_p99=2s,event_drop_rate=0.5")
	jc := e2eJob("pm-job", 47)
	jc.Generations = 6
	postJob(t, p, e2eJobBody(jc))

	// Wait for the injected kill.
	waitErr := make(chan error, 1)
	go func() { waitErr <- p.cmd.Wait() }()
	select {
	case err := <-waitErr:
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.Sys().(syscall.WaitStatus).ExitStatus() != ChaosExitCode {
			t.Fatalf("serve exit = %v, want chaos exit code %d\n%s", err, ChaosExitCode, p.out.String())
		}
	case <-time.After(120 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("chaos kill never fired:\n%s", p.out.String())
	}

	// The dying job dumped its black box into its own commons dir.
	bundles, err := FindPostmortems(jobDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 {
		t.Fatalf("postmortem bundles = %v, want exactly 1\n%s", bundles, p.out.String())
	}
	pm, err := DecodePostmortem(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	if pm.Meta.Reason != "chaos kill" {
		t.Fatalf("bundle reason = %q, want \"chaos kill\"", pm.Meta.Reason)
	}
	ring := pm.Events()
	if len(ring) == 0 {
		t.Fatal("bundle event ring is empty")
	}
	if len(pm.Sections["goroutines"]) == 0 {
		t.Fatal("bundle has no goroutine dump")
	}

	// Crash consistency: the ring's tail is exactly the journal's
	// durable tail — the recorder hook sits after the file append, so
	// the black box never claims events the journal lost.
	journal, err := ReadEvents(filepath.Join(jobDir, EventsFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(journal) == 0 {
		t.Fatal("journal is empty")
	}
	ringTail, fileTail := ring[len(ring)-1].Seq, journal[len(journal)-1].Seq
	if ringTail != fileTail {
		t.Fatalf("ring tail seq %d != journal tail seq %d", ringTail, fileTail)
	}

	// The offline decoder renders it.
	out := run(t, bins["a4nn-analyze"], "-store", store, "postmortem")
	for _, want := range []string{"chaos kill", "pm-job", "seq"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analyze postmortem missing %q:\n%s", want, out)
		}
	}

	// The crash was injected, not structural: a relaunch without the
	// chaos plan resumes the job to completion.
	p2 := startServe(t, bins["a4nn-serve"], store, "-resume")
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, err := getJob(t, p2, "pm-job")
		if err == nil && st.State == "completed" {
			break
		}
		if err == nil && (st.State == "failed" || st.State == "canceled") {
			t.Fatalf("resumed job ended %s: %s", st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never completed after resume: %v\n%s", err, p2.out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	p2.cmd.Wait()
}
