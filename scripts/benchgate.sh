#!/bin/sh
# benchgate.sh guards the zero-allocation training hot path: it re-runs
# BenchmarkTrainStep and fails when allocs/op exceeds the committed
# "current" value in BENCH_tensor.json, and re-runs the disabled-path
# observability benchmarks (BenchmarkDisabledProfiler in internal/nn,
# BenchmarkDisabledHealth in internal/health, BenchmarkDisabledHistory
# in internal/tsdb, and friends) and fails unless each costs exactly 0
# allocs/op. Run via `make bench-gate`.
set -eu

budget=$(awk '/"current"/ { c = 1 }
c && /BenchmarkTrainStep/ {
    if (match($0, /"allocs_per_op": *[0-9]+/)) {
        s = substr($0, RSTART, RLENGTH)
        sub(/.*: */, "", s)
        print s
        exit
    }
}' BENCH_tensor.json)
if [ -z "$budget" ]; then
    echo "benchgate: no current BenchmarkTrainStep allocs_per_op in BENCH_tensor.json" >&2
    exit 1
fi

out=$("${GO:-go}" test -run '^$' -bench 'BenchmarkTrainStep$|BenchmarkDisabledProfiler$' -benchmem ./internal/nn)
echo "$out"
measured=$(echo "$out" | awk '/^BenchmarkTrainStep(-[0-9]+)?[ \t]/ {
    for (i = 3; i < NF; i++) if ($(i+1) == "allocs/op") print $i
}')
if [ -z "$measured" ]; then
    echo "benchgate: benchmark reported no allocs/op" >&2
    exit 1
fi

if [ "$measured" -gt "$budget" ]; then
    echo "benchgate: FAIL — BenchmarkTrainStep allocates $measured/op, budget is $budget/op" >&2
    echo "benchgate: if the regression is intended, re-baseline with 'make bench-json'" >&2
    exit 1
fi
echo "benchgate: ok — BenchmarkTrainStep $measured allocs/op within budget $budget"

# The per-layer profiler's disabled path must be free: with no profiler
# installed the Forward/Backward hooks are one atomic load and a branch,
# so the steady-state training pass stays at exactly zero allocations.
profiler=$(echo "$out" | awk '/^BenchmarkDisabledProfiler(-[0-9]+)?[ \t]/ {
    for (i = 3; i < NF; i++) if ($(i+1) == "allocs/op") print $i
}')
if [ -z "$profiler" ]; then
    echo "benchgate: BenchmarkDisabledProfiler reported no allocs/op" >&2
    exit 1
fi
if [ "$profiler" -gt 0 ]; then
    echo "benchgate: FAIL — disabled profiler allocates $profiler/op, must be 0" >&2
    exit 1
fi
echo "benchgate: ok — disabled profiler $profiler allocs/op"

# The disabled health monitor must be equally free: with no engine
# attached, Engine.Observe is one nil check, so workflows that never
# pass -health pay nothing for the alerting pipeline.
hout=$("${GO:-go}" test -run '^$' -bench 'BenchmarkDisabledHealth$' -benchmem ./internal/health)
echo "$hout"
healthallocs=$(echo "$hout" | awk '/^BenchmarkDisabledHealth(-[0-9]+)?[ \t]/ {
    for (i = 3; i < NF; i++) if ($(i+1) == "allocs/op") print $i
}')
if [ -z "$healthallocs" ]; then
    echo "benchgate: BenchmarkDisabledHealth reported no allocs/op" >&2
    exit 1
fi
if [ "$healthallocs" -gt 0 ]; then
    echo "benchgate: FAIL — disabled health monitor allocates $healthallocs/op, must be 0" >&2
    exit 1
fi
echo "benchgate: ok — disabled health monitor $healthallocs allocs/op"

# Disarmed crash points must be free too: every durable-state
# transition calls chaos.Point, so with no -chaos plan installed the
# check is one atomic load and zero allocations.
cout=$("${GO:-go}" test -run '^$' -bench 'BenchmarkDisabledChaos$' -benchmem ./internal/chaos)
echo "$cout"
chaosallocs=$(echo "$cout" | awk '/^BenchmarkDisabledChaos(-[0-9]+)?[ \t]/ {
    for (i = 3; i < NF; i++) if ($(i+1) == "allocs/op") print $i
}')
if [ -z "$chaosallocs" ]; then
    echo "benchgate: BenchmarkDisabledChaos reported no allocs/op" >&2
    exit 1
fi
if [ "$chaosallocs" -gt 0 ]; then
    echo "benchgate: FAIL — disarmed chaos point allocates $chaosallocs/op, must be 0" >&2
    exit 1
fi
echo "benchgate: ok — disarmed chaos point $chaosallocs allocs/op"

# The detached flight recorder must be free on the journal hot path:
# Journal.Emit with no recorder attached pays one atomic load and a
# nil-receiver branch, so runs that never arm a black box record
# events at zero extra allocations.
rout=$("${GO:-go}" test -run '^$' -bench 'BenchmarkDisabledRecorder$' -benchmem ./internal/obs)
echo "$rout"
recallocs=$(echo "$rout" | awk '/^BenchmarkDisabledRecorder(-[0-9]+)?[ \t]/ {
    for (i = 3; i < NF; i++) if ($(i+1) == "allocs/op") print $i
}')
if [ -z "$recallocs" ]; then
    echo "benchgate: BenchmarkDisabledRecorder reported no allocs/op" >&2
    exit 1
fi
if [ "$recallocs" -gt 0 ]; then
    echo "benchgate: FAIL — detached flight recorder allocates $recallocs/op, must be 0" >&2
    exit 1
fi
echo "benchgate: ok — detached flight recorder $recallocs allocs/op"

# A disabled SLO monitor (no -slo spec) must cost nothing: observe and
# check on a nil monitor are one nil check each, so the objective
# machinery is free for every run that sets no objectives.
sout=$("${GO:-go}" test -run '^$' -bench 'BenchmarkDisabledSLO$' -benchmem ./internal/health)
echo "$sout"
sloallocs=$(echo "$sout" | awk '/^BenchmarkDisabledSLO(-[0-9]+)?[ \t]/ {
    for (i = 3; i < NF; i++) if ($(i+1) == "allocs/op") print $i
}')
if [ -z "$sloallocs" ]; then
    echo "benchgate: BenchmarkDisabledSLO reported no allocs/op" >&2
    exit 1
fi
if [ "$sloallocs" -gt 0 ]; then
    echo "benchgate: FAIL — disabled SLO monitor allocates $sloallocs/op, must be 0" >&2
    exit 1
fi
echo "benchgate: ok — disabled SLO monitor $sloallocs allocs/op"

# A disabled run-history store must be free on the metrics hot path:
# with no -history flag the sampler and store are nil, and both
# SampleNow and Append are a single nil-receiver branch, so runs that
# record no history pay nothing for the time-series machinery.
yout=$("${GO:-go}" test -run '^$' -bench 'BenchmarkDisabledHistory$' -benchmem ./internal/tsdb)
echo "$yout"
histallocs=$(echo "$yout" | awk '/^BenchmarkDisabledHistory(-[0-9]+)?[ \t]/ {
    for (i = 3; i < NF; i++) if ($(i+1) == "allocs/op") print $i
}')
if [ -z "$histallocs" ]; then
    echo "benchgate: BenchmarkDisabledHistory reported no allocs/op" >&2
    exit 1
fi
if [ "$histallocs" -gt 0 ]; then
    echo "benchgate: FAIL — disabled history store allocates $histallocs/op, must be 0" >&2
    exit 1
fi
echo "benchgate: ok — disabled history store $histallocs allocs/op"

# The GEMM throughput floor: BenchmarkMatMul/1024 must hold at least
# half the committed current GFLOP/s from BENCH_tensor.json. Half, not
# unity, because shared-runner throughput swings ±30% run to run — a
# real regression (losing the packed path, a serialized kernel, a
# tiling bug) costs far more than 2×. The measurement is pinned to
# GOMAXPROCS=1 so the parallel GEMM's fan-out cannot inflate the number
# on wide runners: the floor compares single-core throughput against a
# single-core baseline regardless of the machine's core count (which is
# recorded below for post-mortems on gate failures). Re-baseline with
# 'make bench-json' after intentional changes.
committed=$(awk '/"current"/ { c = 1 }
c && /BenchmarkMatMul\/1024/ {
    if (match($0, /"GFLOP\/s": *[0-9.]+/)) {
        s = substr($0, RSTART, RLENGTH)
        sub(/.*: */, "", s)
        print s
        exit
    }
}' BENCH_tensor.json)
if [ -z "$committed" ]; then
    echo "benchgate: no current BenchmarkMatMul/1024 GFLOP/s in BENCH_tensor.json" >&2
    exit 1
fi
cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo unknown)
echo "benchgate: runner has $cores core(s) online; GFLOP/s floor measured at GOMAXPROCS=1"
tout=$(GOMAXPROCS=1 "${GO:-go}" test -run '^$' -bench 'BenchmarkMatMul/1024$' ./internal/tensor)
echo "$tout"
gflops=$(echo "$tout" | awk '/^BenchmarkMatMul\/1024(-[0-9]+)?[ \t]/ {
    for (i = 3; i < NF; i++) if ($(i+1) == "GFLOP/s") print $i
}' | head -n 1)
if [ -z "$gflops" ]; then
    echo "benchgate: BenchmarkMatMul/1024 reported no GFLOP/s" >&2
    exit 1
fi
if [ "$(awk -v g="$gflops" -v c="$committed" 'BEGIN { print (g + g >= c) ? "ok" : "low" }')" != "ok" ]; then
    echo "benchgate: FAIL — BenchmarkMatMul/1024 at $gflops GFLOP/s, floor is $committed/2" >&2
    exit 1
fi
echo "benchgate: ok — BenchmarkMatMul/1024 $gflops GFLOP/s against committed $committed (floor: half)"
