# benchjson.awk turns `go test -bench -benchmem` output into a JSON array
# of benchmark records. Lines that are not benchmark results (goos/pkg
# headers, PASS, ok) are ignored. Each record carries ns/op, B/op,
# allocs/op, and any custom metric (e.g. GFLOP/s) the benchmark reported.
#
# Usage: awk -f scripts/benchjson.awk bench-output.txt
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
    iters = $2
    ns = ""; bytes = ""; allocs = ""; metric = ""; metricName = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        else if ($(i+1) == "B/op") bytes = $i
        else if ($(i+1) == "allocs/op") allocs = $i
        else if ($(i+1) ~ /\//) { metric = $i; metricName = $(i+1) }
    }
    if (ns == "") next
    rec = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (bytes != "")  rec = rec sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") rec = rec sprintf(", \"allocs_per_op\": %s", allocs)
    if (metric != "") rec = rec sprintf(", \"%s\": %s", metricName, metric)
    rec = rec "}"
    recs[n++] = rec
}
END {
    print "["
    for (i = 0; i < n; i++) print recs[i] (i < n-1 ? "," : "")
    print "]"
}
