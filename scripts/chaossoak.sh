#!/bin/sh
# chaossoak.sh is the crash-recovery acceptance sweep: it runs the
# TestChaosSoak harness (chaos_soak_test.go) over CHAOS_SOAK_ITERS
# randomly seeded crash plans. Each plan crashes the real a4nn CLI at a
# named durable-state transition, relaunches it with -resume until the
# search completes, and asserts the crash-consistency contract — the
# journal sequence stays monotone, no model retrains epochs its
# checkpoint already covers, every store file decodes, and the final
# Pareto front is byte-identical to a fault-free same-seed run.
# Run via `make chaos-soak`.
set -eu

iters="${CHAOS_SOAK_ITERS:-20}"
echo "chaossoak: $iters seeded crash plans"
CHAOS_SOAK_ITERS="$iters" "${GO:-go}" test -run 'TestChaosSoak$' -count=1 -v .
echo "chaossoak: ok"
