package a4nn

// Service-grade end-to-end test of the multi-tenant job service: boot
// a4nn-serve -jobs, submit two concurrent searches over HTTP, kill the
// process mid-run, restart with -resume, and assert both jobs complete
// with intact journals and records byte-identical to same-seed solo
// runs. This is the whole-service counterpart of chaos_soak_test.go's
// single-run kill loop.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// serveProc is one running a4nn-serve under test.
type serveProc struct {
	cmd  *exec.Cmd
	addr string
	out  *bytes.Buffer
}

var serveAddrRe = regexp.MustCompile(`on http://([0-9.]+:[0-9]+)`)

// startServe boots a4nn-serve -jobs on an ephemeral port and waits for
// the listen address to appear on stdout.
func startServe(t *testing.T, bin, store string, extra ...string) *serveProc {
	t.Helper()
	args := append([]string{"-store", store, "-jobs", "-fleet", "2", "-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			buf.WriteString(line + "\n")
			if m := serveAddrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p := &serveProc{cmd: cmd, addr: addr, out: &buf}
		t.Cleanup(func() {
			if cmd.Process != nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		})
		return p
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("a4nn-serve never printed its address:\n%s", buf.String())
		return nil
	}
}

func (p *serveProc) url(path string) string { return "http://" + p.addr + path }

// jobStatusWire mirrors the GET /api/jobs/{id} payload.
type jobStatusWire struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Error    string `json:"error"`
	Progress struct {
		GenerationsDone int `json:"generations_done"`
		ModelsDone      int `json:"models_done"`
	} `json:"progress"`
	Resumes int `json:"resumes"`
}

func getJob(t *testing.T, p *serveProc, id string) (jobStatusWire, error) {
	t.Helper()
	resp, err := http.Get(p.url("/api/jobs/" + id))
	if err != nil {
		return jobStatusWire{}, err
	}
	defer resp.Body.Close()
	var st jobStatusWire
	if resp.StatusCode != 200 {
		return st, fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, err
	}
	return st, nil
}

func postJob(t *testing.T, p *serveProc, body string) {
	t.Helper()
	resp, err := http.Post(p.url("/api/jobs"), "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var sb strings.Builder
		buf := make([]byte, 4096)
		n, _ := resp.Body.Read(buf)
		sb.Write(buf[:n])
		t.Fatalf("submit: %d %s", resp.StatusCode, sb.String())
	}
}

// e2eJob is the submission both service jobs and the reference solo
// runs share: long enough (48 models) that the kill lands mid-run.
func e2eJob(id string, seed int64) JobConfig {
	return JobConfig{
		ID: id, Beam: "medium", Devices: 1,
		Population: 6, Offspring: 6, Generations: 8, Epochs: 10, Seed: seed,
	}
}

func e2eJobBody(jc JobConfig) string {
	data, _ := json.Marshal(jc)
	return string(data)
}

// canonicalStoreRecords marshals a commons' records with timestamps
// zeroed, for byte-level comparison across runs.
func canonicalStoreRecords(t *testing.T, dir string) map[string]string {
	t.Helper()
	store, err := OpenCommons(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := store.All()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(recs))
	for _, r := range recs {
		r.CreatedAt = time.Time{}
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out[r.ID] = string(data)
	}
	return out
}

func TestServiceKillResumeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("service e2e in -short mode")
	}
	bins := buildTools(t, "a4nn-serve", "a4nn-analyze")
	store := scratchDir(t, "store")
	jobsDir := filepath.Join(store, "jobs")
	jobA, jobB := e2eJob("job-a", 42), e2eJob("job-b", 43)

	// Boot the service and submit two concurrent searches sharing the
	// 2-slot fleet.
	p := startServe(t, bins["a4nn-serve"], store)
	postJob(t, p, e2eJobBody(jobA))
	postJob(t, p, e2eJobBody(jobB))

	// Wait until both searches are genuinely mid-run, then kill the
	// process without any cleanup.
	deadline := time.Now().Add(60 * time.Second)
	for {
		a, errA := getJob(t, p, "job-a")
		b, errB := getJob(t, p, "job-b")
		if errA == nil && errB == nil && a.Progress.ModelsDone >= 1 && b.Progress.ModelsDone >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never started: %v %v\n%s", errA, errB, p.out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()

	// The kill left non-terminal manifests behind.
	manifests, err := ReadJobManifests(jobsDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(manifests) != 2 {
		t.Fatalf("manifests after kill = %d, want 2", len(manifests))
	}
	for _, m := range manifests {
		if m.State.Terminal() {
			t.Logf("job %s finished before the kill (state %s)", m.Config.ID, m.State)
		}
	}

	// Restart with -resume: every interrupted job continues from its
	// journal, checkpoints, and completed records.
	p2 := startServe(t, bins["a4nn-serve"], store, "-resume")
	deadline = time.Now().Add(120 * time.Second)
	for {
		a, errA := getJob(t, p2, "job-a")
		b, errB := getJob(t, p2, "job-b")
		if errA == nil && errB == nil && a.State == "completed" && b.State == "completed" {
			break
		}
		if errA == nil && (a.State == "failed" || a.State == "canceled") {
			t.Fatalf("job-a ended %s: %s", a.State, a.Error)
		}
		if errB == nil && (b.State == "failed" || b.State == "canceled") {
			t.Fatalf("job-b ended %s: %s", b.State, b.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never completed after resume: %v %v\n%s", errA, errB, p2.out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Graceful shutdown this time.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p2.cmd.Wait(); err != nil {
		t.Fatalf("serve exit: %v\n%s", err, p2.out.String())
	}

	for _, jc := range []JobConfig{jobA, jobB} {
		jobDir := filepath.Join(jobsDir, jc.ID)

		// Journal integrity: one events.jsonl per job, sequence numbers
		// strictly increasing across the kill/restart boundary, exactly
		// one terminal run_end.
		events, err := ReadEvents(filepath.Join(jobDir, EventsFile))
		if err != nil {
			t.Fatal(err)
		}
		if len(events) == 0 {
			t.Fatalf("%s: empty journal", jc.ID)
		}
		var lastSeq uint64
		for _, e := range events {
			if e.Seq <= lastSeq {
				t.Fatalf("%s: journal seq not monotone: %d after %d", jc.ID, e.Seq, lastSeq)
			}
			lastSeq = e.Seq
		}

		// Determinism: the resumed service run produced records
		// byte-identical (modulo timestamps) to a clean same-seed run.
		solo := jc
		solo.ID = "solo"
		cfg, err := BuildJobSearchConfig(solo)
		if err != nil {
			t.Fatal(err)
		}
		soloDir := t.TempDir()
		soloStore, err := OpenCommons(soloDir)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = soloStore
		cfg.Obs = NewObserver()
		if _, err := RunCtx(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
		got, want := canonicalStoreRecords(t, jobDir), canonicalStoreRecords(t, soloDir)
		if len(got) != len(want) {
			t.Fatalf("%s: %d records, solo run has %d", jc.ID, len(got), len(want))
		}
		for id, w := range want {
			if got[id] != w {
				t.Errorf("%s: record %s diverges from solo run", jc.ID, id)
			}
		}
	}

	// The offline fleet view agrees.
	out := run(t, bins["a4nn-analyze"], "-store", store, "jobs")
	for _, want := range []string{"job-a", "job-b", "completed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analyze jobs missing %q:\n%s", want, out)
		}
	}
}
