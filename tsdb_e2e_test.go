package a4nn

// End-to-end tests of the run-history pipeline: a real `a4nn -history`
// process killed mid-run and resumed must yield one continuous,
// gap-annotated series file, and the cross-run regression monitor must
// fire against a degraded baseline while staying silent against the
// run's own.

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"a4nn/internal/health"
	"a4nn/internal/tsdb"
)

// TestHistoryKillResumeE2E is the crash-consistency acceptance test:
// run with -history, SIGKILL mid-run (torn tail and all), relaunch with
// -resume, and require a range query over the full window to return a
// single monotone series that continues the same series file — pre-kill
// samples preserved, post-kill samples appended, the outage visible as
// a gap annotation rather than silence or corruption.
func TestHistoryKillResumeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("history e2e in -short mode")
	}
	bins := buildTools(t, "a4nn", "a4nn-analyze")
	store := scratchDir(t, "store")
	seriesPath := filepath.Join(store, tsdb.SeriesFile)
	args := []string{"-beam", "medium", "-population", "10", "-offspring", "10",
		"-generations", "40", "-seed", "11", "-store", store, "-checkpoints",
		"-history", "-history-interval", "25ms"}

	cmd := exec.Command(bins["a4nn"], args...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Let the sampler persist a few flushed blocks, then pull the plug
	// with no warning: SIGKILL skips every flush and close path, so the
	// file may well end mid-block.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if fi, err := os.Stat(seriesPath); err == nil && fi.Size() >= 4096 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("%s never grew past 4KiB", seriesPath)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // expected non-zero: the process was SIGKILLed mid-run

	// The torn file must already be readable, and its bounds are the
	// yardstick for the resumed run below.
	pre, err := OpenHistoryRead(store)
	if err != nil {
		t.Fatalf("history unreadable after SIGKILL: %v", err)
	}
	preMin, preMax := pre.Bounds()
	if preMin == 0 || preMax == 0 {
		t.Fatalf("no samples survived the kill (bounds %d..%d)", preMin, preMax)
	}

	// A visible outage: long enough that the raw-query gap heuristic
	// (4× the 25ms sampling median) cannot miss it.
	time.Sleep(1200 * time.Millisecond)
	run(t, bins["a4nn"], append(args, "-resume")...)

	db, err := OpenHistoryRead(store)
	if err != nil {
		t.Fatal(err)
	}
	minT, maxT := db.Bounds()
	if minT != preMin {
		t.Errorf("pre-kill history lost: store minT %d, want %d", minT, preMin)
	}
	if maxT <= preMax {
		t.Errorf("no post-resume samples: maxT %d, pre-kill %d", maxT, preMax)
	}

	const series = "a4nn_train_epochs_total"
	raw, err := db.Query(series, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	gaps := 0
	for i, p := range raw.Points {
		if i > 0 && p.T <= raw.Points[i-1].T {
			t.Fatalf("timestamps not monotone at %d: %d after %d", i, p.T, raw.Points[i-1].T)
		}
		if p.Gap {
			gaps++
		}
	}
	if gaps == 0 {
		t.Errorf("raw query over the kill window has no gap annotation (%d points)", len(raw.Points))
	}
	if first, last := raw.Points[0].T, raw.Points[len(raw.Points)-1].T; first > preMax || last <= preMax {
		t.Errorf("series does not span the kill: %d..%d, kill at %d", first, last, preMax)
	}

	// Step-aligned downsampling over the full window keeps the hole.
	stepped, err := db.Query(series, minT, maxT, 200)
	if err != nil {
		t.Fatal(err)
	}
	gaps = 0
	for _, p := range stepped.Points {
		if p.Gap {
			gaps++
		}
	}
	if gaps == 0 {
		t.Errorf("stepped query elided the outage (%d points)", len(stepped.Points))
	}

	// The analyzer reads the same continuation.
	out := run(t, bins["a4nn-analyze"], "-store", store, "series", series)
	if !strings.Contains(out, "series "+series) || strings.Contains(out, "gaps: 0") {
		t.Fatalf("analyze series output:\n%s", out)
	}
	if m := regexp.MustCompile(`gaps: (\d+)`).FindStringSubmatch(out); m == nil {
		t.Fatalf("analyze series reported no gap count:\n%s", out)
	}
}

// TestRegressionBaselineE2E is the cross-run regression acceptance
// test: a run compared against its own exported baseline ends healthy,
// and the same run compared against a degraded baseline raises a
// sustained regression alert through the ordinary health pipeline.
func TestRegressionBaselineE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("regression e2e in -short mode")
	}
	bins := buildTools(t, "a4nn", "a4nn-analyze")
	work := scratchDir(t, "work")
	basePath := filepath.Join(work, "base.json")
	searchArgs := func(store string) []string {
		return []string{"-beam", "medium", "-population", "6", "-offspring", "6",
			"-generations", "10", "-seed", "11", "-store", store,
			"-history", "-history-interval", "25ms"}
	}

	// Reference run → committed baseline.
	run(t, bins["a4nn"], searchArgs(filepath.Join(work, "ref"))...)
	out := run(t, bins["a4nn-analyze"], "-store", filepath.Join(work, "ref"),
		"-baseline-out", basePath, "series")
	if !strings.Contains(out, "baseline over") {
		t.Fatalf("baseline export output:\n%s", out)
	}

	// An identical run judged against that baseline stays silent: same
	// seed, same shape, no regression to find.
	healthArgs := []string{"-health", "-health-config", "sample-ms=50"}
	out = run(t, bins["a4nn"], append(append(searchArgs(filepath.Join(work, "same")),
		healthArgs...), "-regress-baseline", basePath)...)
	if !strings.Contains(out, "health: ok (0 active") {
		t.Fatalf("run against own baseline not healthy:\n%s", out)
	}
	if strings.Contains(out, "[warning] regression/") || strings.Contains(out, "[critical] regression/") {
		t.Fatalf("regression alert against own baseline:\n%s", out)
	}

	// Degrade the committed throughput: pretend the baseline run was 10×
	// faster. The live run now reads as a sustained lower-worse
	// regression and must end with the alert active.
	base, err := health.LoadBaseline(basePath)
	if err != nil {
		t.Fatal(err)
	}
	const key = "a4nn_sched_effective_gflops"
	bs, ok := base.Series[key]
	if !ok {
		t.Fatalf("baseline missing %s (series: %v)", key, len(base.Series))
	}
	if bs.Direction != "lower-worse" {
		t.Fatalf("%s direction = %q, want lower-worse", key, bs.Direction)
	}
	bs.Mean *= 10
	base.Series = map[string]health.BaselineSeries{key: bs}
	degradedPath := filepath.Join(work, "degraded.json")
	if err := base.Save(degradedPath); err != nil {
		t.Fatal(err)
	}
	out = run(t, bins["a4nn"], append(append(searchArgs(filepath.Join(work, "slow")),
		healthArgs...), "-regress-baseline", degradedPath)...)
	if !strings.Contains(out, "regression/"+key) || !strings.Contains(out, "below baseline") {
		t.Fatalf("degraded baseline raised no regression alert:\n%s", out)
	}
}
