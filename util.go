package a4nn

import "math/rand"

// newRand builds a deterministic source for the package's convenience
// constructors; library code proper always takes explicit *rand.Rand.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
